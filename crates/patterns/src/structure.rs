//! The structural artifact of a lattice sweep: the metric-independent half.
//!
//! Candidate generation splits into two kinds of work (Pradhan et al.,
//! SIGMOD 2022, §4.2): *structural* — which patterns exist above the support
//! threshold, what rows they cover — and *scoring* — how responsible each
//! coverage is under a metric/estimator pair. The structural half depends
//! only on the data and the lattice's structural knobs (support threshold τ,
//! depth), so a [`SweepStructure`] captures it once per `(τ, depth, …)`
//! configuration and every scorer — in this sweep or a later query with a
//! different metric, estimator, or bias evaluation — resolves its merges
//! against it instead of re-intersecting coverages.
//!
//! The artifact is **append-only and internally synchronized**: entries are
//! pure functions of the predicate table (a merged pattern's coverage is the
//! AND of its predicates' coverages, independent of which parent pair
//! produced it), so concurrent structural workers and scorer threads can
//! share one artifact freely, and a warm query topping up unexplored
//! territory can never invalidate anything.

use crate::bitset::BitSet;
use crate::coverage::CoverageCache;
use crate::index::PredicateIndex;
use crate::lattice::LatticeConfig;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// An admissible sampled-support prefilter for merge resolution.
///
/// Before paying an exact fused [`BitSet::and_count`] over every word of two
/// parent coverages, the structural pass can probe a fixed sample of words
/// and bound the full intersection from above. With `sa`, `sb`, `sab` the
/// in-sample popcounts of parent A, parent B, and their AND, every
/// intersection row outside the sample lies in both parents outside the
/// sample, so
///
/// ```text
/// |A ∩ B|  ≤  sab + min(|A| − sa, |B| − sb)
/// ```
///
/// A merge is skipped **iff** this upper bound is already below the
/// artifact's `min_count` — a sound proof that the exact count would fail
/// the support check too, so skipping is *admissible*: no supported merge is
/// ever skipped, and sweeps with the prefilter on are bit-identical to
/// sweeps with it off. (Skipped merges are recorded with the bound as their
/// count and `exact = false`; the bound stays below every threshold the
/// record can be served at, so τ-monotone re-filtering classifies it
/// correctly as well.)
///
/// Three things keep the probe cheap enough to pay for itself:
///
/// * **Block-contiguous samples.** The sample is a deterministic spread of
///   contiguous word *blocks* (no RNG — the same session always probes the
///   same words), so the probe streams whole cache lines and runs on the
///   same dispatched SIMD kernel as the exact count, instead of gathering
///   isolated words.
/// * **Per-parent sampled counts.** `sa`/`sb` depend only on one parent, so
///   callers compute them once per frontier pattern ([`ParentHint`], via
///   [`SweepStructure::parent_hint`] — which also skips the pass entirely
///   for parents that can never be a probed pair's smaller side) and the
///   per-merge probe is the `sab` pass alone.
/// * **Constant-time gates and an early-exit probe.** When the smaller
///   parent clears `min_count` by more than the whole sample, or the
///   out-of-sample slack alone reaches `min_count`, the bound *cannot*
///   prove doom; past that, an independence estimate filters out probes
///   that almost certainly would not skip. Gated-out merges go straight to
///   the exact path without reading a bitset — which never changes
///   results, only costs. Probes that do run bail out the moment their
///   partial `sab` already guarantees the bound clears `min_count`, so
///   failed probes stop after a few blocks (see
///   [`SupportPrefilter::check`]).
///
/// The bound's power scales with the sampled *fraction*: a merge is only
/// provably doomed once `f = sample_rows/n_rows` exceeds roughly
/// `(min(|A|,|B|) − min_count) / (min(|A|,|B|) − |A∩B|)`. Doomed merges
/// concentrate where the smaller parent hugs the support threshold, so a
/// sample of about a quarter of the rows catches most of them; a few
/// thousand rows out of a million proves nothing.
///
/// The probe/skip counters are process-wide totals shared (via `Arc`)
/// between an artifact and every re-filtered view derived from it.
#[derive(Debug)]
pub struct SupportPrefilter {
    /// Sampled word ranges `[lo, hi)`, disjoint and strictly increasing,
    /// all within `0..n_rows.div_ceil(64)`.
    blocks: Vec<(usize, usize)>,
    /// Total sampled words (sum of block lengths).
    sample_words: usize,
    /// Universe size the prefilter was built for (the plausibility
    /// estimate needs the larger parent's density).
    n_rows: usize,
    /// Merge resolutions that ran the sampled probe (gated-out resolutions
    /// — where the gate proved the probe could not skip — are not counted).
    probes: AtomicU64,
    /// Probes whose upper bound proved the merge unsupported.
    skips: AtomicU64,
}

/// Words per sampled block: 128 words = 8192 rows, a 1 KiB contiguous
/// stream. Long enough that the hardware prefetcher streams each block
/// like a sequential scan (short scattered blocks degrade the sampled
/// passes to latency-bound reads at 1M-row bitsets), short enough that a
/// quarter-universe sample still splits into tens of blocks spread across
/// the row range at SQF scale.
const PREFILTER_BLOCK_WORDS: usize = 128;

/// Margin on the independence-estimate gate in [`SupportPrefilter::check`]:
/// probe only when the predicted bound is under `margin × min_count`.
/// Estimates above that rarely turn into skips, and a probe that does not
/// skip is pure overhead. Correlated predicates can beat the estimate by
/// more than this, so the margin is generous rather than tight.
const PREFILTER_EST_MARGIN: f64 = 1.5;

/// Margin on [`SupportPrefilter::hint_pays_off`]: pay a parent's sampled
/// pass only when `count·(1−f)` — the slack its pairs will carry under
/// near-proportional sampling — is under `margin × min_count`, i.e. when
/// the slack gate in [`SupportPrefilter::check`] has a realistic chance of
/// letting its pairs through.
const PREFILTER_HINT_MARGIN: f64 = 1.5;

/// A structural parent's exact member count paired with its count inside a
/// prefilter's sample — computed once per frontier pattern (see
/// [`SweepStructure::parent_hint`]) and reused across every merge the
/// pattern participates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParentHint {
    /// Exact member count of the parent's coverage.
    pub count: usize,
    /// Members inside the prefilter's sampled blocks. May undercount (it is
    /// 0 when no prefilter is attached, and when the parent is supported
    /// comfortably enough that the sampled pass cannot pay off — see
    /// [`SweepStructure::parent_hint`]); undercounting only loosens the
    /// still-admissible bound.
    pub sampled: usize,
}

impl SupportPrefilter {
    /// A prefilter over a universe of `n_rows` rows sampling roughly
    /// `sample_rows` of them (rounded up to whole 64-row words, clamped to
    /// the universe) as evenly spread contiguous blocks. `sample_rows` of
    /// zero still samples one word — gate construction on the knob instead
    /// of passing zero.
    pub fn new(n_rows: usize, sample_rows: usize) -> Self {
        let n_words = n_rows.div_ceil(64).max(1);
        let want = sample_rows.div_ceil(64).clamp(1, n_words);
        let n_blocks = want.div_ceil(PREFILTER_BLOCK_WORDS);
        // Spread `n_blocks` blocks totalling exactly `want` words across the
        // word array: block `i` gets its even share of the sampled words,
        // offset by its even share of the `n_words − want` unsampled gap.
        // Consecutive `lo`s differ by ≥ the earlier block's length, so the
        // blocks are disjoint and the last ends within bounds.
        let gap = n_words - want;
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut placed = 0usize;
        for i in 0..n_blocks {
            let len = want * (i + 1) / n_blocks - want * i / n_blocks;
            let lo = gap * i / n_blocks + placed;
            blocks.push((lo, lo + len));
            placed += len;
        }
        Self {
            blocks,
            sample_words: want,
            n_rows,
            probes: AtomicU64::new(0),
            skips: AtomicU64::new(0),
        }
    }

    /// Number of rows the sample actually spans (whole words × 64; this is
    /// the effective value of the `sample_rows` knob after rounding).
    pub fn sample_rows(&self) -> usize {
        self.sample_words * 64
    }

    /// A set's member count inside the sampled blocks — the `sampled` half
    /// of a [`ParentHint`]. One pass over `sample_words` words; callers
    /// compute it once per parent, not per merge.
    ///
    /// # Panics
    /// If the set's universe is smaller than the one the prefilter was
    /// built for.
    pub fn sampled_count(&self, s: &BitSet) -> usize {
        // `x & x = x`, so the fused AND-popcount kernel against itself is a
        // pure popcount of the blocks — on the dispatched SIMD path, unlike
        // a scalar `count_ones` fold.
        self.blocks
            .iter()
            .map(|&(lo, hi)| s.and_count_range(s, lo, hi))
            .sum()
    }

    /// An upper bound on `a.and_count(b)`: the exact in-sample intersection
    /// plus the best case outside the sample. Every intersection row outside
    /// the sample lies in both parents outside the sample, so with `sa`,
    /// `sb`, `sab` the in-sample popcounts,
    ///
    /// ```text
    /// |A ∩ B|  ≤  sab + min(|A| − sa, |B| − sb)
    /// ```
    ///
    /// The hints **must** carry the exact counts of `a` and `b` themselves;
    /// an overcounted `count` or overcounted `sampled` breaks the bound. An
    /// *under*counted `sampled` (down to 0) only loosens it — which
    /// [`SweepStructure::parent_hint`] exploits to skip the sampled pass for
    /// parents that can never be a probed pair's smaller side.
    ///
    /// # Panics
    /// If the bitsets' universes are smaller than the one the prefilter was
    /// built for, or a hint's `sampled` exceeds its `count`.
    pub fn upper_bound(&self, a: &BitSet, ha: ParentHint, b: &BitSet, hb: ParentHint) -> usize {
        let sab: usize = self
            .blocks
            .iter()
            .map(|&(lo, hi)| a.and_count_range(b, lo, hi))
            .sum();
        sab + (ha.count - ha.sampled).min(hb.count - hb.sampled)
    }

    /// Decides one merge: `Some(bound)` when the sampled probe proves the
    /// merge unsupported (`bound < min_count`), `None` when the exact count
    /// must run.
    ///
    /// Three constant-time gates run before any bitset is read (a gated-out
    /// resolution is not counted as a probe). None of them can change which
    /// merges are skipped versus computed exactly — declining a probe only
    /// routes the merge to the exact path, so results stay bit-identical —
    /// they only shed probe cost:
    ///
    /// 1. When the smaller parent clears `min_count` by at least
    ///    `sample_rows`, the bound **cannot** fall below it.
    /// 2. When the out-of-sample slack `min(|A|−sa, |B|−sb)` alone reaches
    ///    `min_count`, likewise — even `sab = 0` could not prove doom.
    /// 3. Otherwise an independence estimate of the probe's outcome —
    ///    `sab ≈ s_small · (|big| / n)` — predicts the bound; when even a
    ///    generous margin under that prediction clears `min_count`, the
    ///    probe almost certainly would not skip, so it is not paid. (This
    ///    gate is off for full-universe samples, where the probe *is* the
    ///    exact count and skipping everything unsupported is guaranteed.)
    ///
    /// The probe itself early-exits: scanning sampled blocks only ever
    /// grows `sab`, so the moment the partial `sab` reaches
    /// `min_count − slack` the final bound provably clears `min_count` and
    /// the remaining blocks are not read. Failed probes — the majority —
    /// therefore cost a few blocks, not the whole sample; only probes that
    /// actually skip scan every block.
    pub fn check(
        &self,
        a: &BitSet,
        ha: ParentHint,
        b: &BitSet,
        hb: ParentHint,
        min_count: usize,
    ) -> Option<usize> {
        let (small, big) = if ha.count <= hb.count {
            (ha, hb)
        } else {
            (hb, ha)
        };
        if small.count >= min_count + self.sample_rows() {
            return None;
        }
        let slack = (ha.count - ha.sampled).min(hb.count - hb.sampled);
        if slack >= min_count {
            return None;
        }
        if self.sample_rows() < self.n_rows {
            let est_sab = small.sampled as f64 * (big.count as f64 / self.n_rows.max(1) as f64);
            if est_sab + slack as f64 >= PREFILTER_EST_MARGIN * min_count as f64 {
                return None;
            }
        }
        let need = min_count - slack; // > 0, so a completed scan means skip
        let mut sab = 0usize;
        for &(lo, hi) in &self.blocks {
            sab += a.and_count_range(b, lo, hi);
            if sab >= need {
                self.note(false);
                return None;
            }
        }
        self.note(true);
        Some(sab + slack)
    }

    /// Whether a parent with this exact `count` is worth a sampled pass:
    /// can a pair it is the smaller side of realistically clear the slack
    /// gate in [`SupportPrefilter::check`] (`count − sampled < min_count`)?
    ///
    /// The sound necessary condition is only `count < min_count +
    /// sample_rows`, but with evenly spread blocks `sampled ≈ count · f`,
    /// so the slack lands near `count·(1−f)` — parents where that is
    /// comfortably past `min_count` will be slack-gated out anyway, and
    /// their pass is pure overhead. Declining leaves the hint's `sampled`
    /// at 0, which is always admissible ([`ParentHint`]); the only cost is
    /// a vanishingly unlikely missed skip from a parent whose coverage
    /// concentrates unusually hard inside the sample.
    pub(crate) fn hint_pays_off(&self, count: usize, min_count: usize) -> bool {
        if count >= min_count + self.sample_rows() {
            return false;
        }
        if self.sample_rows() >= self.n_rows {
            return true;
        }
        let f = self.sample_rows() as f64 / self.n_rows as f64;
        count as f64 * (1.0 - f) < PREFILTER_HINT_MARGIN * min_count as f64
    }

    /// Records one consultation; `skipped` marks whether the bound proved
    /// the merge unsupported.
    fn note(&self, skipped: bool) {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if skipped {
            self.skips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total merge resolutions that consulted the prefilter.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Total consultations that skipped the exact count.
    pub fn skips(&self) -> u64 {
        self.skips.load(Ordering::Relaxed)
    }
}

/// A supported single-predicate pattern (the structural part of level 1).
#[derive(Debug, Clone)]
pub struct StructSingle {
    /// Predicate id.
    pub id: u16,
    /// Shared coverage bitset.
    pub coverage: Arc<BitSet>,
    /// `coverage.count()`.
    pub count: usize,
}

/// The structural record of one merged pattern: its support count, plus the
/// coverage bitset when the pattern meets the artifact's threshold (failed
/// merges keep only the count — enough to skip them without re-intersecting).
#[derive(Debug, Clone)]
pub struct MergeRecord {
    /// Rows covered; `None` iff `count` is below the artifact's `min_count`.
    pub coverage: Option<Arc<BitSet>>,
    /// Number of rows the merged pattern covers. When `exact` is false this
    /// is a prefilter upper bound that already proved the pattern
    /// unsupported — still below `min_count`, so support classification is
    /// unaffected at this and every tighter threshold.
    pub count: usize,
    /// True when `count` is the exact intersection size; false when it is
    /// the admissible upper bound of a prefilter-skipped merge.
    pub exact: bool,
}

/// The reusable structural artifact of a sweep: supported level-1 patterns
/// plus every merged pattern's coverage/support resolved so far.
#[derive(Debug)]
pub struct SweepStructure {
    singles: Vec<StructSingle>,
    merges: Mutex<HashMap<Box<[u16]>, MergeRecord>>,
    min_count: usize,
    n_rows: usize,
    /// Wall-clock cost of building the level-1 structural pass, charged into
    /// every scorer's level-1 duration (mirrors how a solo run pays it).
    build_time: Duration,
    /// Admissible sampled-support prefilter consulted (only) by *hinted*
    /// merge resolution; `None` leaves every merge on the exact path.
    prefilter: Option<Arc<SupportPrefilter>>,
}

impl SweepStructure {
    /// Builds the artifact for one structural configuration: filters the
    /// index's predicates by the config's support threshold. (Merged levels
    /// fill in lazily as sweeps run.)
    ///
    /// # Panics
    /// If `config.support_threshold` is outside `[0, 1)` or
    /// `config.max_predicates` is zero — same contract as the lattice
    /// search, enforced here because sessions build artifacts straight from
    /// request parameters.
    pub fn build(index: &PredicateIndex, config: &LatticeConfig) -> Self {
        Self::build_with_prefilter(index, config, None)
    }

    /// [`SweepStructure::build`] with an optional sampled-support prefilter
    /// attached. The prefilter only changes *how fast* unsupported merges
    /// are classified (hinted resolution may skip the exact count when the
    /// sampled upper bound already fails `min_count`); it never changes
    /// which merges are supported, their coverages, or their exact counts —
    /// see [`SupportPrefilter`] for the admissibility argument.
    ///
    /// # Panics
    /// Same contract as [`SweepStructure::build`].
    pub fn build_with_prefilter(
        index: &PredicateIndex,
        config: &LatticeConfig,
        prefilter: Option<Arc<SupportPrefilter>>,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&config.support_threshold),
            "support threshold must be in [0, 1)"
        );
        assert!(
            config.max_predicates >= 1,
            "need at least one predicate per pattern"
        );
        let t0 = Instant::now();
        let n = index.n_rows();
        let min_count = min_count_for(config.support_threshold, n);
        let singles = index
            .entries()
            .iter()
            .filter(|e| e.count >= min_count)
            .map(|e| StructSingle {
                id: e.id,
                coverage: Arc::clone(&e.coverage),
                count: e.count,
            })
            .collect();
        Self {
            singles,
            merges: Mutex::new(HashMap::new()),
            min_count,
            n_rows: n,
            build_time: t0.elapsed(),
            prefilter,
        }
    }

    /// The attached sampled-support prefilter, if any.
    pub fn prefilter(&self) -> Option<&Arc<SupportPrefilter>> {
        self.prefilter.as_ref()
    }

    /// The supported single-predicate patterns, in predicate-id order.
    pub fn singles(&self) -> &[StructSingle] {
        &self.singles
    }

    /// Minimum coverage count a pattern needs (`⌈τ·n⌉`, at least 1).
    pub fn min_count(&self) -> usize {
        self.min_count
    }

    /// Number of dataset rows the coverages range over.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Wall-clock cost of the level-1 structural pass.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Number of merged patterns resolved so far (supported or not).
    pub fn merges_resolved(&self) -> usize {
        self.lock().len()
    }

    /// Locks the merge map, recovering from poisoning (records are pure and
    /// inserted fully built; see `CoverageCache::lock` for the rationale).
    fn lock(&self) -> MutexGuard<'_, HashMap<Box<[u16]>, MergeRecord>> {
        gopher_par::lock_recover(&self.merges)
    }

    /// The resolved record for a merged pattern, if any sweep has computed
    /// it yet.
    pub fn lookup(&self, ids: &[u16]) -> Option<MergeRecord> {
        self.lock().get(ids).cloned()
    }

    /// True once `ids` has a resolved record.
    pub fn contains(&self, ids: &[u16]) -> bool {
        self.lock().contains_key(ids)
    }

    /// Snapshot of every resolved merge key. The structural pass takes one
    /// snapshot per level instead of locking per enumerated pair: it only
    /// inserts records *after* its parallel phase returns, so the snapshot
    /// stays exact for the phase's whole duration.
    pub fn known_keys(&self) -> HashSet<Box<[u16]>> {
        self.lock().keys().cloned().collect()
    }

    /// Inserts a freshly resolved record, keeping the existing one on a
    /// race (records for the same ids are value-identical by construction).
    pub fn insert(&self, ids: &[u16], record: MergeRecord) {
        self.lock()
            .entry(ids.to_vec().into_boxed_slice())
            .or_insert(record);
    }

    /// Resolves a merged pattern from its parents' coverages: returns the
    /// cached record, or computes one lazily (see
    /// [`SweepStructure::compute_record`]), records it, and returns it. This
    /// is both the structural-pass worker primitive and the scorer fallback
    /// for territory the shared pass has not visited.
    pub fn resolve(
        &self,
        ids: &[u16],
        cache: &CoverageCache,
        a: &BitSet,
        b: &BitSet,
    ) -> MergeRecord {
        self.resolve_with(ids, cache, a, b, None)
    }

    /// Bundles a parent's exact member count with its in-sample count for
    /// the attached prefilter — computed once per frontier pattern and
    /// reused across every merge the pattern participates in.
    ///
    /// The sampled half is 0 when no prefilter is attached, and *also* when
    /// the parent is supported comfortably enough that its pairs would be
    /// gated out of probing regardless (`SupportPrefilter::hint_pays_off`
    /// — pairs probe only when their smaller side's out-of-sample slack can
    /// fall under `min_count`). Undercounting `sampled` only ever loosens
    /// the (admissible) bound, so the shortcut trades a vanishingly
    /// unlikely missed skip for a sampled pass saved on most of the
    /// frontier.
    pub fn parent_hint(&self, coverage: &BitSet, count: usize) -> ParentHint {
        let sampled = match &self.prefilter {
            Some(pf) if pf.hint_pays_off(count, self.min_count) => pf.sampled_count(coverage),
            _ => 0,
        };
        ParentHint { count, sampled }
    }

    /// [`SweepStructure::resolve`] with the parents' exact and sampled
    /// member counts as hints (see [`SweepStructure::parent_hint`]). A
    /// hinted miss may consult the attached prefilter (when one is attached)
    /// and skip the exact intersection for merges the sampled upper bound
    /// already proves unsupported; an unhinted call (`None`) always takes
    /// the exact path.
    pub fn resolve_with(
        &self,
        ids: &[u16],
        cache: &CoverageCache,
        a: &BitSet,
        b: &BitSet,
        parents: Option<(ParentHint, ParentHint)>,
    ) -> MergeRecord {
        if let Some(hit) = self.lookup(ids) {
            return hit;
        }
        let record = self.compute_record_with(ids, cache, a, b, parents);
        self.insert(ids, record.clone());
        record
    }

    /// Computes a record without touching the merge map (structural-pass
    /// workers use this so insertion order stays deterministic — chunks are
    /// concatenated and inserted in pair order by the caller).
    ///
    /// **Count-first, materialize-on-demand:** unless some other structural
    /// configuration already materialized this pattern's coverage (a cache
    /// peek answers that for free), the intersection is *counted* with the
    /// fused [`BitSet::and_count`] kernel first, and the AND is only
    /// materialized — and routed through `cache` for cross-config reuse —
    /// when the merge meets this artifact's `min_count`. At realistic
    /// support thresholds failed merges are the majority of the pair space,
    /// so most pairs cost one fused pass and zero allocations.
    pub fn compute_record(
        &self,
        ids: &[u16],
        cache: &CoverageCache,
        a: &BitSet,
        b: &BitSet,
    ) -> MergeRecord {
        self.compute_record_with(ids, cache, a, b, None)
    }

    /// [`SweepStructure::compute_record`] with the parents' exact and
    /// sampled member counts as hints. When a prefilter is attached *and*
    /// the hints are present, a cache-missing merge is first bounded from
    /// above on the sampled blocks; if the bound already fails `min_count`
    /// the record is written with `count = bound, exact = false` and the
    /// exact intersection is never run. The skip is admissible — the bound
    /// can only over-count — so supported merges always reach the exact
    /// path and the sweep's results are bit-identical with or without it.
    pub fn compute_record_with(
        &self,
        ids: &[u16],
        cache: &CoverageCache,
        a: &BitSet,
        b: &BitSet,
        parents: Option<(ParentHint, ParentHint)>,
    ) -> MergeRecord {
        if let Some(coverage) = cache.peek(ids) {
            let count = coverage.count();
            return MergeRecord {
                coverage: (count >= self.min_count).then_some(coverage),
                count,
                exact: true,
            };
        }
        if let (Some(pf), Some((ha, hb))) = (&self.prefilter, parents) {
            if let Some(bound) = pf.check(a, ha, b, hb, self.min_count) {
                return MergeRecord {
                    coverage: None,
                    count: bound,
                    exact: false,
                };
            }
        }
        let count = a.and_count(b);
        let coverage =
            (count >= self.min_count).then(|| cache.get_or_insert_with(ids, || a.and(b)));
        MergeRecord {
            coverage,
            count,
            exact: true,
        }
    }

    /// Snapshot of every resolved merge (key and record). Built for audits:
    /// the prefilter admissibility test re-checks each `exact = false`
    /// record against the exact intersection.
    pub fn merge_snapshot(&self) -> Vec<(Box<[u16]>, MergeRecord)> {
        self.lock()
            .iter()
            .map(|(ids, r)| (ids.clone(), r.clone()))
            .collect()
    }

    /// Attempts to carry this artifact across a data delta: re-anchors it
    /// onto a post-delta predicate `index` (same frozen predicate ids, new
    /// coverages and row count) at the **same** `min_count`, or reports that
    /// it must be rebuilt.
    ///
    /// Survival is decided by an exact **frontier-flip test**: the artifact
    /// survives iff the set of supported level-1 ids under the new counts
    /// equals the old one — i.e. no single-predicate pattern crossed the
    /// `min_count` boundary in either direction. (A delta of `|Δ|` rows can
    /// move any count by at most `|Δ|`, so artifacts whose singles all clear
    /// the threshold by more than `|Δ|` always survive; the test is exact
    /// rather than margin-based, so tight-margin artifacts that happen not
    /// to flip survive too.) On a flip the level-1 candidate set a cold
    /// build would produce differs, and the caller must invalidate.
    ///
    /// A surviving artifact is returned with:
    /// * singles re-read from the patched index (fresh coverages/counts,
    ///   identical filter to a cold [`SweepStructure::build`]);
    /// * every *exact, materialized* merge record re-intersected from the
    ///   patched predicate coverages (routed through `cache` exactly like a
    ///   cold resolve, shedding the coverage when the fresh count falls
    ///   below `min_count` — precisely the record a cold sweep would write);
    /// * count-only and prefilter-bounded records dropped — their stale
    ///   counts are cheaper to lazily re-resolve (bit-identically) than to
    ///   eagerly re-intersect across the mostly-unsupported pair space.
    ///
    /// The bounded re-check therefore costs `O(predicates)` count
    /// comparisons plus one fused AND per *supported* resolved merge — never
    /// a full sweep.
    pub fn patched(
        &self,
        index: &PredicateIndex,
        cache: &CoverageCache,
        prefilter: Option<Arc<SupportPrefilter>>,
    ) -> Option<SweepStructure> {
        // Frontier-flip test. Entries and singles are both in table order,
        // so the supported-id sequences compare positionally.
        let new_frontier: Vec<u16> = index
            .entries()
            .iter()
            .filter(|e| e.count >= self.min_count)
            .map(|e| e.id)
            .collect();
        if new_frontier.len() != self.singles.len()
            || new_frontier
                .iter()
                .zip(&self.singles)
                .any(|(&id, s)| id != s.id)
        {
            return None;
        }
        let singles = index
            .entries()
            .iter()
            .filter(|e| e.count >= self.min_count)
            .map(|e| StructSingle {
                id: e.id,
                coverage: Arc::clone(&e.coverage),
                count: e.count,
            })
            .collect();
        // Predicate ids are dense in table order (entry `i` carries id `i`),
        // so coverage lookup is a direct index instead of a hash map; an id
        // past the index (impossible for a same-table patch, but the
        // invalidation contract covers it) drops the artifact.
        let entries = index.entries();
        let cov_of = |id: u16| -> Option<&Arc<BitSet>> {
            let e = entries.get(id as usize)?;
            debug_assert_eq!(e.id, id, "predicate index must stay in id order");
            Some(&e.coverage)
        };
        let source = self.lock();
        let mut merges = HashMap::with_capacity(source.len());
        for (ids, record) in source.iter() {
            if !record.exact || record.coverage.is_none() {
                continue;
            }
            // These records were all supported before the delta, so the
            // intersection is almost always re-materialized anyway:
            // computing it once and popcounting the result beats the
            // count-then-intersect double pass the cold sweep uses (where
            // most candidate pairs *fail* the support check).
            let fresh = match ids.as_ref() {
                [i, j] => cov_of(*i)?.and(cov_of(*j)?),
                [i, j, rest @ ..] => {
                    let mut acc = cov_of(*i)?.and(cov_of(*j)?);
                    for r in rest {
                        acc = acc.and(cov_of(*r)?);
                    }
                    acc
                }
                _ => unreachable!("merge records have at least two ids"),
            };
            let count = fresh.count();
            let coverage =
                (count >= self.min_count).then(|| cache.get_or_insert_with(ids, || fresh));
            merges.insert(
                ids.clone(),
                MergeRecord {
                    coverage,
                    count,
                    exact: true,
                },
            );
        }
        Some(SweepStructure {
            singles,
            merges: Mutex::new(merges),
            min_count: self.min_count,
            n_rows: index.n_rows(),
            build_time: self.build_time,
            prefilter,
        })
    }

    /// A tightened copy of this artifact for a higher support threshold:
    /// the τ-monotone serve. Support counts only shrink as predicates are
    /// added, so an artifact built at a looser threshold already contains
    /// every single and every merge a sweep at `min_count ≥` its own can
    /// reach — this re-filters them instead of re-intersecting anything:
    /// singles below the tighter count drop out, and merge records between
    /// the two thresholds keep their count but shed their coverage (exactly
    /// what a cold build at the tighter threshold would have recorded).
    ///
    /// The view is detached: merges resolved into it later do not flow back
    /// into the source artifact (their records would carry the wrong
    /// `coverage` presence for the looser threshold), but coverage bitsets
    /// stay shared `Arc`s with the source throughout.
    ///
    /// Cost: `O(singles + resolved merges)` — the record map is snapshotted
    /// (keys and `Arc` handles, never bitset payloads) under one brief hold
    /// of the source's merge lock, and the threshold re-filter runs on the
    /// snapshot *outside* it, so concurrent sweeps keep resolving merges
    /// into the source while a view is cut. Callers cache views under their
    /// own exact key, so the snapshot runs once per `(source, min_count)`
    /// pair; a copy-free overlay (shared base map + per-view threshold) is
    /// a recorded follow-up for very deep sweeps.
    ///
    /// # Panics
    /// If `min_count` is below this artifact's own threshold — loosening
    /// needs structural work this artifact never did.
    pub fn refilter_view(&self, min_count: usize) -> Self {
        assert!(
            min_count >= self.min_count,
            "refilter can only tighten the threshold ({} < {})",
            min_count,
            self.min_count
        );
        let t0 = Instant::now();
        let singles = self
            .singles
            .iter()
            .filter(|s| s.count >= min_count)
            .cloned()
            .collect();
        // Snapshot first (one short lock hold), transform after: building
        // the view's map — hashing every key, shedding coverages — under
        // the source lock would stall every concurrent `resolve` for the
        // whole rebuild. Records inserted after the snapshot simply miss
        // this view, which is the same outcome as cutting the view a
        // moment earlier.
        let snapshot = self.merge_snapshot();
        let merges = snapshot
            .into_iter()
            .map(|(ids, r)| {
                (
                    ids,
                    MergeRecord {
                        coverage: if r.count >= min_count {
                            r.coverage
                        } else {
                            None
                        },
                        count: r.count,
                        exact: r.exact,
                    },
                )
            })
            .collect();
        Self {
            singles,
            merges: Mutex::new(merges),
            min_count,
            n_rows: self.n_rows,
            build_time: t0.elapsed(),
            // Views share the source's prefilter (and its counters): an
            // inexact record's bound is below the source threshold, hence
            // below this tighter one too, so it still classifies correctly.
            prefilter: self.prefilter.clone(),
        }
    }
}

/// `⌈τ·n⌉`, at least 1 — the count form of the support threshold.
pub fn min_count_for(support_threshold: f64, n_rows: usize) -> usize {
    (support_threshold * n_rows as f64).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_predicates;
    use gopher_data::generators::german;

    fn setup(n: usize, tau: f64) -> (CoverageCache, PredicateIndex, LatticeConfig) {
        let d = german(n, 93);
        let table = generate_predicates(&d, 4);
        let cache = CoverageCache::new();
        let index = PredicateIndex::build(&table, &cache);
        let config = LatticeConfig {
            support_threshold: tau,
            ..Default::default()
        };
        (cache, index, config)
    }

    #[test]
    fn singles_are_filtered_by_support() {
        let (_cache, index, config) = setup(400, 0.1);
        let structure = SweepStructure::build(&index, &config);
        let min = structure.min_count();
        assert_eq!(min, 40);
        assert!(!structure.singles().is_empty());
        for s in structure.singles() {
            assert!(s.count >= min);
            assert_eq!(s.count, s.coverage.count());
        }
        let expected = index.entries().iter().filter(|e| e.count >= min).count();
        assert_eq!(structure.singles().len(), expected);
    }

    #[test]
    fn resolve_records_supported_and_failed_merges() {
        let (cache, index, config) = setup(400, 0.3);
        let structure = SweepStructure::build(&index, &config);
        let a = &index.entries()[0];
        let b = &index.entries()[1];
        let ids = [a.id, b.id];
        let misses_before = cache.stats().misses;
        let record = structure.resolve(&ids, &cache, &a.coverage, &b.coverage);
        assert_eq!(record.count, a.coverage.intersection_count(&b.coverage));
        assert_eq!(
            record.coverage.is_some(),
            record.count >= structure.min_count()
        );
        // Second resolve hits the artifact: no new intersection, cached or
        // counted (the coverage cache's miss counter stays put).
        let misses_after_first = cache.stats().misses;
        let again = structure.resolve(&ids, &cache, &a.coverage, &b.coverage);
        assert_eq!(again.count, record.count);
        assert_eq!(structure.merges_resolved(), 1);
        assert_eq!(cache.stats().misses, misses_after_first);
        // Lazy materialization: only a *supported* merge reaches the
        // coverage cache at all — a failed one is counted, never allocated.
        if record.coverage.is_some() {
            assert_eq!(misses_after_first, misses_before + 1);
        } else {
            assert_eq!(misses_after_first, misses_before);
            assert!(
                cache.peek(&ids).is_none(),
                "failed merges stay unmaterialized"
            );
        }
    }

    #[test]
    fn failed_merges_never_touch_the_coverage_cache() {
        // τ = 0.9: virtually every merge fails the support check.
        let (cache, index, config) = setup(400, 0.9);
        let structure = SweepStructure::build(&index, &config);
        let entries_before = cache.len();
        let mut failed = 0usize;
        for i in 0..index.entries().len().min(8) {
            for j in (i + 1)..index.entries().len().min(8) {
                let (a, b) = (&index.entries()[i], &index.entries()[j]);
                let record = structure.resolve(&[a.id, b.id], &cache, &a.coverage, &b.coverage);
                if record.coverage.is_none() {
                    failed += 1;
                }
            }
        }
        assert!(failed > 0, "the tight threshold must fail some merges");
        // Every resolved merge failed support ⇒ zero new cache entries.
        assert_eq!(
            cache.len() - entries_before,
            structure.merges_resolved() - failed
        );
    }

    #[test]
    fn refilter_view_does_not_block_concurrent_resolves() {
        // Regression: `refilter_view` used to build the view's whole merge
        // map while holding the source's merge lock, stalling every
        // concurrent `resolve` for the duration of the rebuild (and
        // deadlocking would-be reentrant callers). It now snapshots under
        // one brief hold and transforms outside, so resolving threads and
        // view-cutting threads interleave freely. This drives both from
        // scoped threads and checks every cut view is a value-consistent
        // prefix of the source — completion alone catches a deadlock.
        let (cache, index, config) = setup(400, 0.05);
        let structure = SweepStructure::build(&index, &config);
        let n = index.entries().len();
        let tighter = structure.min_count() + 5;
        let views = std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..n {
                    for j in (i + 1)..n.min(i + 5) {
                        let (a, b) = (&index.entries()[i], &index.entries()[j]);
                        let _ = structure.resolve(&[a.id, b.id], &cache, &a.coverage, &b.coverage);
                    }
                }
            });
            let cutter = s.spawn(|| {
                (0..20)
                    .map(|_| structure.refilter_view(tighter))
                    .collect::<Vec<_>>()
            });
            cutter.join().expect("view cutter panicked")
        });
        assert_eq!(views.len(), 20);
        for view in &views {
            assert_eq!(view.min_count(), tighter);
            // Every record a view captured must agree with the source's
            // final record for the same ids (records are pure functions of
            // the predicate table, so mid-resolve snapshots can only be
            // shorter, never different).
            for (ids, r) in view.merge_snapshot() {
                let source = structure.lookup(&ids).expect("view key missing in source");
                assert_eq!(r.count, source.count);
                assert_eq!(r.exact, source.exact);
                assert_eq!(
                    r.coverage.is_some(),
                    r.count >= tighter && source.coverage.is_some()
                );
            }
        }
        // The resolver finished its full pair sweep regardless of the
        // concurrent view cutting.
        let resolved = structure.merges_resolved();
        let expected: usize = (0..n).map(|i| n.min(i + 5) - (i + 1)).sum();
        assert_eq!(resolved, expected);
    }

    #[test]
    fn refilter_view_matches_a_cold_build_at_the_tighter_threshold() {
        let (cache, index, config) = setup(400, 0.05);
        let loose = SweepStructure::build(&index, &config);
        // Resolve a few merges so the view has records to re-filter.
        for i in 0..6 {
            let (a, b) = (&index.entries()[i], &index.entries()[i + 1]);
            let _ = loose.resolve(&[a.id, b.id], &cache, &a.coverage, &b.coverage);
        }
        let tight_config = LatticeConfig {
            support_threshold: 0.2,
            ..config.clone()
        };
        let cold = SweepStructure::build(&index, &tight_config);
        let view = loose.refilter_view(cold.min_count());

        assert_eq!(view.min_count(), cold.min_count());
        assert_eq!(view.n_rows(), cold.n_rows());
        assert_eq!(view.singles().len(), cold.singles().len());
        for (v, c) in view.singles().iter().zip(cold.singles()) {
            assert_eq!(v.id, c.id);
            assert_eq!(v.count, c.count);
            assert_eq!(v.coverage, c.coverage);
        }
        // Re-filtered records keep counts; coverage survives iff the count
        // clears the tighter threshold.
        assert_eq!(view.merges_resolved(), loose.merges_resolved());
        for (i, entry) in index.entries().iter().enumerate().take(6) {
            let ids = [entry.id, index.entries()[i + 1].id];
            let from_loose = loose.lookup(&ids).unwrap();
            let from_view = view.lookup(&ids).unwrap();
            assert_eq!(from_view.count, from_loose.count);
            assert_eq!(
                from_view.coverage.is_some(),
                from_view.count >= cold.min_count()
            );
        }
    }

    /// The sampled bound must never under-count (admissibility), and hinted
    /// resolution must agree with the exact path on every supported merge —
    /// skipping only merges whose true count fails the threshold.
    #[test]
    fn prefilter_skips_are_admissible_and_results_identical() {
        let (cache, index, config) = setup(400, 0.25);
        let exact = SweepStructure::build(&index, &config);
        let pf = Arc::new(SupportPrefilter::new(index.n_rows(), 64));
        let filtered = SweepStructure::build_with_prefilter(&index, &config, Some(Arc::clone(&pf)));
        let pf_cache = CoverageCache::new();
        let entries = index.entries();
        let mut expected_probes = 0u64;
        for i in 0..entries.len().min(10) {
            for j in (i + 1)..entries.len().min(10) {
                let (a, b) = (&entries[i], &entries[j]);
                let ids = [a.id, b.id];
                let truth = exact.resolve(&ids, &cache, &a.coverage, &b.coverage);
                let ha = filtered.parent_hint(&a.coverage, a.count);
                let hb = filtered.parent_hint(&b.coverage, b.count);
                let hinted = filtered.resolve_with(
                    &ids,
                    &pf_cache,
                    &a.coverage,
                    &b.coverage,
                    Some((ha, hb)),
                );
                // The bound can only over-count.
                assert!(
                    pf.upper_bound(&a.coverage, ha, &b.coverage, hb) >= truth.count,
                    "bound under-counted for {ids:?}"
                );
                // Only pairs past all three gates run the sampled probe:
                // past gates 1–2 the bound provably clears min_count, and
                // past the independence-estimate gate a skip is too unlikely
                // to pay for the probe. Declined probes still resolve
                // exactly, so gating is invisible in the results.
                let (small, big) = if ha.count <= hb.count {
                    (ha, hb)
                } else {
                    (hb, ha)
                };
                let slack = (ha.count - ha.sampled).min(hb.count - hb.sampled);
                let est = small.sampled as f64 * (big.count as f64 / index.n_rows() as f64)
                    + slack as f64;
                let gated_in = small.count < filtered.min_count() + pf.sample_rows()
                    && slack < filtered.min_count()
                    && est < PREFILTER_EST_MARGIN * filtered.min_count() as f64;
                expected_probes += u64::from(gated_in);
                if hinted.exact {
                    assert_eq!(hinted.count, truth.count);
                    assert_eq!(hinted.coverage.is_some(), truth.coverage.is_some());
                } else {
                    // Skipped: the true count must genuinely fail support,
                    // and the recorded bound must fail it too.
                    assert!(gated_in, "a gated-out pair cannot be skipped");
                    assert!(truth.count < filtered.min_count());
                    assert!(hinted.count < filtered.min_count());
                    assert!(hinted.count >= truth.count, "recorded bound under-counts");
                    assert!(hinted.coverage.is_none());
                }
            }
        }
        assert_eq!(
            pf.probes(),
            expected_probes,
            "every cache-missing pair inside the gate probes exactly once"
        );
        assert!(pf.skips() <= pf.probes());
        // Unhinted resolution never consults the prefilter.
        let before = pf.probes();
        let (a, b) = (&entries[0], &entries[11]);
        let _ = filtered.resolve(&[a.id, b.id], &pf_cache, &a.coverage, &b.coverage);
        assert_eq!(pf.probes(), before);
    }

    /// A full-universe sample makes the bound exact: everything unsupported
    /// is skipped, and the recorded bound equals the true count.
    #[test]
    fn full_sample_prefilter_bound_is_exact() {
        let (cache, index, config) = setup(300, 0.4);
        let n = index.n_rows();
        let pf = Arc::new(SupportPrefilter::new(n, n));
        assert!(pf.sample_rows() >= n);
        let filtered = SweepStructure::build_with_prefilter(&index, &config, Some(Arc::clone(&pf)));
        let entries = index.entries();
        for i in 0..entries.len().min(6) {
            for j in (i + 1)..entries.len().min(6) {
                let (a, b) = (&entries[i], &entries[j]);
                let truth = a.coverage.and_count(&b.coverage);
                let record = filtered.resolve_with(
                    &[a.id, b.id],
                    &cache,
                    &a.coverage,
                    &b.coverage,
                    Some((
                        filtered.parent_hint(&a.coverage, a.count),
                        filtered.parent_hint(&b.coverage, b.count),
                    )),
                );
                assert_eq!(record.count, truth);
                assert_eq!(record.exact, truth >= filtered.min_count());
            }
        }
    }

    /// Re-filtered views share the source's prefilter and keep inexact
    /// records classified as unsupported.
    #[test]
    fn refilter_view_inherits_the_prefilter() {
        let (cache, index, config) = setup(400, 0.3);
        let pf = Arc::new(SupportPrefilter::new(index.n_rows(), 64));
        let loose = SweepStructure::build_with_prefilter(&index, &config, Some(Arc::clone(&pf)));
        let entries = index.entries();
        for i in 0..6 {
            let (a, b) = (&entries[i], &entries[i + 1]);
            let _ = loose.resolve_with(
                &[a.id, b.id],
                &cache,
                &a.coverage,
                &b.coverage,
                Some((
                    loose.parent_hint(&a.coverage, a.count),
                    loose.parent_hint(&b.coverage, b.count),
                )),
            );
        }
        let view = loose.refilter_view(loose.min_count() + 10);
        assert!(Arc::ptr_eq(view.prefilter().unwrap(), &pf));
        for (ids, r) in view.merge_snapshot() {
            let src = loose.lookup(&ids).unwrap();
            assert_eq!(r.count, src.count);
            assert_eq!(r.exact, src.exact);
            if !r.exact {
                assert!(r.count < view.min_count());
            }
        }
    }

    /// A small delta that flips no single across the support frontier must
    /// yield a surviving artifact whose singles and re-patched merges agree
    /// exactly with fresh resolution over the post-delta index.
    #[test]
    fn patched_artifact_matches_fresh_resolution_after_small_delta() {
        let d = german(400, 93);
        let table = generate_predicates(&d, 4);
        let cache = CoverageCache::new();
        let index = PredicateIndex::build(&table, &cache);
        let config = LatticeConfig {
            support_threshold: 0.1,
            ..Default::default()
        };
        let structure = SweepStructure::build(&index, &config);
        let mut resolved: Vec<[u16; 2]> = Vec::new();
        for i in 0..8 {
            let (a, b) = (&index.entries()[i], &index.entries()[i + 1]);
            let _ = structure.resolve(&[a.id, b.id], &cache, &a.coverage, &b.coverage);
            resolved.push([a.id, b.id]);
        }

        // Delta: two rows out, five rows in (same generator, same schema).
        let removed = vec![3usize, 377];
        let mut mask = vec![false; d.n_rows()];
        removed.iter().for_each(|&r| mask[r] = true);
        let new_data = d.remove_rows(&mask).concat(&german(5, 94));
        let new_table = table.patch(&new_data, &removed);
        let new_cache = CoverageCache::new();
        let new_index = PredicateIndex::build(&new_table, &new_cache);

        let patched = structure
            .patched(&new_index, &new_cache, None)
            .expect("a 7-row delta must not flip a min-count-40 frontier here");
        assert_eq!(patched.min_count(), structure.min_count());
        assert_eq!(patched.n_rows(), new_data.n_rows());

        // Singles: identical to filtering the post-delta index cold.
        let expected: Vec<_> = new_index
            .entries()
            .iter()
            .filter(|e| e.count >= patched.min_count())
            .collect();
        assert_eq!(patched.singles().len(), expected.len());
        for (s, e) in patched.singles().iter().zip(expected) {
            assert_eq!(s.id, e.id);
            assert_eq!(s.count, e.count);
            assert_eq!(*s.coverage, *e.coverage);
        }

        // Re-patched merges: supported source records carry over eagerly,
        // count-only ones drop for lazy re-resolution — and either way the
        // record served post-delta equals a fresh compute over the new
        // coverages.
        let mut carried = 0usize;
        for ids in &resolved {
            let a = &new_index.entries()[ids[0] as usize];
            let b = &new_index.entries()[ids[1] as usize];
            assert_eq!(a.id, ids[0], "index entries stay in id order");
            let was_supported = structure.lookup(ids).unwrap().coverage.is_some();
            assert_eq!(patched.contains(ids), was_supported);
            carried += usize::from(was_supported);
            let truth = patched.compute_record(ids, &new_cache, &a.coverage, &b.coverage);
            let record = patched.resolve(ids, &new_cache, &a.coverage, &b.coverage);
            assert_eq!(record.count, truth.count);
            assert!(record.exact);
            assert_eq!(record.coverage.is_some(), truth.coverage.is_some());
            if let (Some(r), Some(t)) = (&record.coverage, &truth.coverage) {
                assert_eq!(**r, **t);
            }
        }
        assert!(carried > 0, "τ = 0.1 must leave some supported merges");
    }

    /// A delta that pushes a borderline single below the support frontier
    /// must invalidate the artifact (the cold level-1 candidate set differs).
    #[test]
    fn patched_artifact_invalidates_on_frontier_flip() {
        let d = german(400, 95);
        let table = generate_predicates(&d, 4);
        let cache = CoverageCache::new();
        let index = PredicateIndex::build(&table, &cache);
        let config = LatticeConfig {
            support_threshold: 0.1,
            ..Default::default()
        };
        let structure = SweepStructure::build(&index, &config);
        // Remove exactly enough covered rows of the tightest-margin single
        // to push it below min_count.
        let borderline = structure
            .singles()
            .iter()
            .min_by_key(|s| s.count)
            .expect("german has supported singles");
        let excess = borderline.count - structure.min_count() + 1;
        let removed: Vec<usize> = borderline
            .coverage
            .iter()
            .take(excess)
            .map(|r| r as usize)
            .collect();
        let mut mask = vec![false; d.n_rows()];
        removed.iter().for_each(|&r| mask[r] = true);
        let new_data = d.remove_rows(&mask);
        let new_table = table.patch(&new_data, &removed);
        let new_cache = CoverageCache::new();
        let new_index = PredicateIndex::build(&new_table, &new_cache);
        assert!(
            structure.patched(&new_index, &new_cache, None).is_none(),
            "a flipped frontier must invalidate"
        );
    }

    #[test]
    #[should_panic(expected = "refilter can only tighten")]
    fn refilter_view_rejects_loosening() {
        let (_cache, index, config) = setup(200, 0.2);
        let structure = SweepStructure::build(&index, &config);
        let _ = structure.refilter_view(structure.min_count() - 1);
    }

    #[test]
    #[should_panic(expected = "support threshold")]
    fn build_rejects_invalid_threshold() {
        let (_cache, index, mut config) = setup(100, 0.05);
        config.support_threshold = 1.0;
        let _ = SweepStructure::build(&index, &config);
    }
}
