//! The structural artifact of a lattice sweep: the metric-independent half.
//!
//! Candidate generation splits into two kinds of work (Pradhan et al.,
//! SIGMOD 2022, §4.2): *structural* — which patterns exist above the support
//! threshold, what rows they cover — and *scoring* — how responsible each
//! coverage is under a metric/estimator pair. The structural half depends
//! only on the data and the lattice's structural knobs (support threshold τ,
//! depth), so a [`SweepStructure`] captures it once per `(τ, depth, …)`
//! configuration and every scorer — in this sweep or a later query with a
//! different metric, estimator, or bias evaluation — resolves its merges
//! against it instead of re-intersecting coverages.
//!
//! The artifact is **append-only and internally synchronized**: entries are
//! pure functions of the predicate table (a merged pattern's coverage is the
//! AND of its predicates' coverages, independent of which parent pair
//! produced it), so concurrent structural workers and scorer threads can
//! share one artifact freely, and a warm query topping up unexplored
//! territory can never invalidate anything.

use crate::bitset::BitSet;
use crate::coverage::CoverageCache;
use crate::index::PredicateIndex;
use crate::lattice::LatticeConfig;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A supported single-predicate pattern (the structural part of level 1).
#[derive(Debug, Clone)]
pub struct StructSingle {
    /// Predicate id.
    pub id: u16,
    /// Shared coverage bitset.
    pub coverage: Arc<BitSet>,
    /// `coverage.count()`.
    pub count: usize,
}

/// The structural record of one merged pattern: its support count, plus the
/// coverage bitset when the pattern meets the artifact's threshold (failed
/// merges keep only the count — enough to skip them without re-intersecting).
#[derive(Debug, Clone)]
pub struct MergeRecord {
    /// Rows covered; `None` iff `count` is below the artifact's `min_count`.
    pub coverage: Option<Arc<BitSet>>,
    /// Number of rows the merged pattern covers.
    pub count: usize,
}

/// The reusable structural artifact of a sweep: supported level-1 patterns
/// plus every merged pattern's coverage/support resolved so far.
#[derive(Debug)]
pub struct SweepStructure {
    singles: Vec<StructSingle>,
    merges: Mutex<HashMap<Box<[u16]>, MergeRecord>>,
    min_count: usize,
    n_rows: usize,
    /// Wall-clock cost of building the level-1 structural pass, charged into
    /// every scorer's level-1 duration (mirrors how a solo run pays it).
    build_time: Duration,
}

impl SweepStructure {
    /// Builds the artifact for one structural configuration: filters the
    /// index's predicates by the config's support threshold. (Merged levels
    /// fill in lazily as sweeps run.)
    ///
    /// # Panics
    /// If `config.support_threshold` is outside `[0, 1)` or
    /// `config.max_predicates` is zero — same contract as the lattice
    /// search, enforced here because sessions build artifacts straight from
    /// request parameters.
    pub fn build(index: &PredicateIndex, config: &LatticeConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.support_threshold),
            "support threshold must be in [0, 1)"
        );
        assert!(
            config.max_predicates >= 1,
            "need at least one predicate per pattern"
        );
        let t0 = Instant::now();
        let n = index.n_rows();
        let min_count = min_count_for(config.support_threshold, n);
        let singles = index
            .entries()
            .iter()
            .filter(|e| e.count >= min_count)
            .map(|e| StructSingle {
                id: e.id,
                coverage: Arc::clone(&e.coverage),
                count: e.count,
            })
            .collect();
        Self {
            singles,
            merges: Mutex::new(HashMap::new()),
            min_count,
            n_rows: n,
            build_time: t0.elapsed(),
        }
    }

    /// The supported single-predicate patterns, in predicate-id order.
    pub fn singles(&self) -> &[StructSingle] {
        &self.singles
    }

    /// Minimum coverage count a pattern needs (`⌈τ·n⌉`, at least 1).
    pub fn min_count(&self) -> usize {
        self.min_count
    }

    /// Number of dataset rows the coverages range over.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Wall-clock cost of the level-1 structural pass.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Number of merged patterns resolved so far (supported or not).
    pub fn merges_resolved(&self) -> usize {
        self.lock().len()
    }

    /// Locks the merge map, recovering from poisoning (records are pure and
    /// inserted fully built; see `CoverageCache::lock` for the rationale).
    fn lock(&self) -> MutexGuard<'_, HashMap<Box<[u16]>, MergeRecord>> {
        self.merges.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The resolved record for a merged pattern, if any sweep has computed
    /// it yet.
    pub fn lookup(&self, ids: &[u16]) -> Option<MergeRecord> {
        self.lock().get(ids).cloned()
    }

    /// True once `ids` has a resolved record.
    pub fn contains(&self, ids: &[u16]) -> bool {
        self.lock().contains_key(ids)
    }

    /// Snapshot of every resolved merge key. The structural pass takes one
    /// snapshot per level instead of locking per enumerated pair: it only
    /// inserts records *after* its parallel phase returns, so the snapshot
    /// stays exact for the phase's whole duration.
    pub fn known_keys(&self) -> HashSet<Box<[u16]>> {
        self.lock().keys().cloned().collect()
    }

    /// Inserts a freshly resolved record, keeping the existing one on a
    /// race (records for the same ids are value-identical by construction).
    pub fn insert(&self, ids: &[u16], record: MergeRecord) {
        self.lock()
            .entry(ids.to_vec().into_boxed_slice())
            .or_insert(record);
    }

    /// Resolves a merged pattern from its parents' coverages: returns the
    /// cached record, or computes one lazily (see
    /// [`SweepStructure::compute_record`]), records it, and returns it. This
    /// is both the structural-pass worker primitive and the scorer fallback
    /// for territory the shared pass has not visited.
    pub fn resolve(
        &self,
        ids: &[u16],
        cache: &CoverageCache,
        a: &BitSet,
        b: &BitSet,
    ) -> MergeRecord {
        if let Some(hit) = self.lookup(ids) {
            return hit;
        }
        let record = self.compute_record(ids, cache, a, b);
        self.insert(ids, record.clone());
        record
    }

    /// Computes a record without touching the merge map (structural-pass
    /// workers use this so insertion order stays deterministic — chunks are
    /// concatenated and inserted in pair order by the caller).
    ///
    /// **Count-first, materialize-on-demand:** unless some other structural
    /// configuration already materialized this pattern's coverage (a cache
    /// peek answers that for free), the intersection is *counted* with the
    /// fused [`BitSet::and_count`] kernel first, and the AND is only
    /// materialized — and routed through `cache` for cross-config reuse —
    /// when the merge meets this artifact's `min_count`. At realistic
    /// support thresholds failed merges are the majority of the pair space,
    /// so most pairs cost one fused pass and zero allocations.
    pub fn compute_record(
        &self,
        ids: &[u16],
        cache: &CoverageCache,
        a: &BitSet,
        b: &BitSet,
    ) -> MergeRecord {
        if let Some(coverage) = cache.peek(ids) {
            let count = coverage.count();
            return MergeRecord {
                coverage: (count >= self.min_count).then_some(coverage),
                count,
            };
        }
        let count = a.and_count(b);
        let coverage =
            (count >= self.min_count).then(|| cache.get_or_insert_with(ids, || a.and(b)));
        MergeRecord { coverage, count }
    }

    /// A tightened copy of this artifact for a higher support threshold:
    /// the τ-monotone serve. Support counts only shrink as predicates are
    /// added, so an artifact built at a looser threshold already contains
    /// every single and every merge a sweep at `min_count ≥` its own can
    /// reach — this re-filters them instead of re-intersecting anything:
    /// singles below the tighter count drop out, and merge records between
    /// the two thresholds keep their count but shed their coverage (exactly
    /// what a cold build at the tighter threshold would have recorded).
    ///
    /// The view is detached: merges resolved into it later do not flow back
    /// into the source artifact (their records would carry the wrong
    /// `coverage` presence for the looser threshold), but coverage bitsets
    /// stay shared `Arc`s with the source throughout.
    ///
    /// Cost: `O(singles + resolved merges)` — the record map is cloned
    /// (keys and `Arc` handles, never bitset payloads) under the source's
    /// merge lock. Callers cache views under their own exact key, so the
    /// clone runs once per `(source, min_count)` pair; a copy-free overlay
    /// (shared base map + per-view threshold) is a recorded follow-up for
    /// very deep sweeps.
    ///
    /// # Panics
    /// If `min_count` is below this artifact's own threshold — loosening
    /// needs structural work this artifact never did.
    pub fn refilter_view(&self, min_count: usize) -> Self {
        assert!(
            min_count >= self.min_count,
            "refilter can only tighten the threshold ({} < {})",
            min_count,
            self.min_count
        );
        let t0 = Instant::now();
        let singles = self
            .singles
            .iter()
            .filter(|s| s.count >= min_count)
            .cloned()
            .collect();
        let merges = self
            .lock()
            .iter()
            .map(|(ids, r)| {
                (
                    ids.clone(),
                    MergeRecord {
                        coverage: if r.count >= min_count {
                            r.coverage.clone()
                        } else {
                            None
                        },
                        count: r.count,
                    },
                )
            })
            .collect();
        Self {
            singles,
            merges: Mutex::new(merges),
            min_count,
            n_rows: self.n_rows,
            build_time: t0.elapsed(),
        }
    }
}

/// `⌈τ·n⌉`, at least 1 — the count form of the support threshold.
pub fn min_count_for(support_threshold: f64, n_rows: usize) -> usize {
    (support_threshold * n_rows as f64).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_predicates;
    use gopher_data::generators::german;

    fn setup(n: usize, tau: f64) -> (CoverageCache, PredicateIndex, LatticeConfig) {
        let d = german(n, 93);
        let table = generate_predicates(&d, 4);
        let cache = CoverageCache::new();
        let index = PredicateIndex::build(&table, &cache);
        let config = LatticeConfig {
            support_threshold: tau,
            ..Default::default()
        };
        (cache, index, config)
    }

    #[test]
    fn singles_are_filtered_by_support() {
        let (_cache, index, config) = setup(400, 0.1);
        let structure = SweepStructure::build(&index, &config);
        let min = structure.min_count();
        assert_eq!(min, 40);
        assert!(!structure.singles().is_empty());
        for s in structure.singles() {
            assert!(s.count >= min);
            assert_eq!(s.count, s.coverage.count());
        }
        let expected = index.entries().iter().filter(|e| e.count >= min).count();
        assert_eq!(structure.singles().len(), expected);
    }

    #[test]
    fn resolve_records_supported_and_failed_merges() {
        let (cache, index, config) = setup(400, 0.3);
        let structure = SweepStructure::build(&index, &config);
        let a = &index.entries()[0];
        let b = &index.entries()[1];
        let ids = [a.id, b.id];
        let misses_before = cache.stats().misses;
        let record = structure.resolve(&ids, &cache, &a.coverage, &b.coverage);
        assert_eq!(record.count, a.coverage.intersection_count(&b.coverage));
        assert_eq!(
            record.coverage.is_some(),
            record.count >= structure.min_count()
        );
        // Second resolve hits the artifact: no new intersection, cached or
        // counted (the coverage cache's miss counter stays put).
        let misses_after_first = cache.stats().misses;
        let again = structure.resolve(&ids, &cache, &a.coverage, &b.coverage);
        assert_eq!(again.count, record.count);
        assert_eq!(structure.merges_resolved(), 1);
        assert_eq!(cache.stats().misses, misses_after_first);
        // Lazy materialization: only a *supported* merge reaches the
        // coverage cache at all — a failed one is counted, never allocated.
        if record.coverage.is_some() {
            assert_eq!(misses_after_first, misses_before + 1);
        } else {
            assert_eq!(misses_after_first, misses_before);
            assert!(
                cache.peek(&ids).is_none(),
                "failed merges stay unmaterialized"
            );
        }
    }

    #[test]
    fn failed_merges_never_touch_the_coverage_cache() {
        // τ = 0.9: virtually every merge fails the support check.
        let (cache, index, config) = setup(400, 0.9);
        let structure = SweepStructure::build(&index, &config);
        let entries_before = cache.len();
        let mut failed = 0usize;
        for i in 0..index.entries().len().min(8) {
            for j in (i + 1)..index.entries().len().min(8) {
                let (a, b) = (&index.entries()[i], &index.entries()[j]);
                let record = structure.resolve(&[a.id, b.id], &cache, &a.coverage, &b.coverage);
                if record.coverage.is_none() {
                    failed += 1;
                }
            }
        }
        assert!(failed > 0, "the tight threshold must fail some merges");
        // Every resolved merge failed support ⇒ zero new cache entries.
        assert_eq!(
            cache.len() - entries_before,
            structure.merges_resolved() - failed
        );
    }

    #[test]
    fn refilter_view_matches_a_cold_build_at_the_tighter_threshold() {
        let (cache, index, config) = setup(400, 0.05);
        let loose = SweepStructure::build(&index, &config);
        // Resolve a few merges so the view has records to re-filter.
        for i in 0..6 {
            let (a, b) = (&index.entries()[i], &index.entries()[i + 1]);
            let _ = loose.resolve(&[a.id, b.id], &cache, &a.coverage, &b.coverage);
        }
        let tight_config = LatticeConfig {
            support_threshold: 0.2,
            ..config.clone()
        };
        let cold = SweepStructure::build(&index, &tight_config);
        let view = loose.refilter_view(cold.min_count());

        assert_eq!(view.min_count(), cold.min_count());
        assert_eq!(view.n_rows(), cold.n_rows());
        assert_eq!(view.singles().len(), cold.singles().len());
        for (v, c) in view.singles().iter().zip(cold.singles()) {
            assert_eq!(v.id, c.id);
            assert_eq!(v.count, c.count);
            assert_eq!(v.coverage, c.coverage);
        }
        // Re-filtered records keep counts; coverage survives iff the count
        // clears the tighter threshold.
        assert_eq!(view.merges_resolved(), loose.merges_resolved());
        for (i, entry) in index.entries().iter().enumerate().take(6) {
            let ids = [entry.id, index.entries()[i + 1].id];
            let from_loose = loose.lookup(&ids).unwrap();
            let from_view = view.lookup(&ids).unwrap();
            assert_eq!(from_view.count, from_loose.count);
            assert_eq!(
                from_view.coverage.is_some(),
                from_view.count >= cold.min_count()
            );
        }
    }

    #[test]
    #[should_panic(expected = "refilter can only tighten")]
    fn refilter_view_rejects_loosening() {
        let (_cache, index, config) = setup(200, 0.2);
        let structure = SweepStructure::build(&index, &config);
        let _ = structure.refilter_view(structure.min_count() - 1);
    }

    #[test]
    #[should_panic(expected = "support threshold")]
    fn build_rejects_invalid_threshold() {
        let (_cache, index, mut config) = setup(100, 0.05);
        config.support_threshold = 1.0;
        let _ = SweepStructure::build(&index, &config);
    }
}
