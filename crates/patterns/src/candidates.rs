//! Candidate predicate generation (the `Φ₁` loop of Algorithm 1).

use crate::bitset::BitSet;
use crate::predicate::Predicate;
use gopher_data::binning::Bins;
use gopher_data::{Dataset, FeatureKind};

/// All candidate predicates over a dataset, each with its precomputed
/// coverage bitset.
///
/// * categorical feature, level `v` → `X = v`;
/// * numeric feature, bin threshold `t` → `X < t` and `X ≥ t` (the paper's
///   `X = val` comparison is meaningless for binned numerics and omitted;
///   ranges arise as `X ≥ a ∧ X < b` during merging).
///
/// Predicates whose support is below the threshold or above
/// `1 − support_threshold`'s complement… are *kept* here — support filtering
/// belongs to the lattice (it owns the threshold); generation only drops
/// empty and full coverage sets, which can never appear in a useful pattern.
#[derive(Debug, Clone)]
pub struct PredicateTable {
    predicates: Vec<Predicate>,
    coverage: Vec<BitSet>,
    n_rows: usize,
}

impl PredicateTable {
    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True if no predicates were generated.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Number of dataset rows the coverage bitsets range over.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The predicate with the given id.
    pub fn predicate(&self, id: u16) -> &Predicate {
        &self.predicates[id as usize]
    }

    /// The coverage of the predicate with the given id.
    pub fn coverage(&self, id: u16) -> &BitSet {
        &self.coverage[id as usize]
    }

    /// Iterates `(id, predicate)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Predicate)> {
        self.predicates
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u16, p))
    }
}

/// Generates the candidate predicates for a dataset, binning numeric
/// features into at most `max_bins` quantile bins (paper §4.2: binning both
/// shrinks the search space and prevents near-duplicate explanations).
///
/// # Panics
/// If the number of generated predicates exceeds `u16::MAX` (raise the
/// binning coarseness instead of hitting this).
pub fn generate_predicates(data: &Dataset, max_bins: usize) -> PredicateTable {
    let n = data.n_rows();
    let mut predicates: Vec<Predicate> = Vec::new();
    let mut coverage: Vec<BitSet> = Vec::new();

    fn push_into(
        predicates: &mut Vec<Predicate>,
        coverage: &mut Vec<BitSet>,
        n: usize,
        pred: Predicate,
        cov: BitSet,
    ) {
        let count = cov.count();
        if count == 0 || count == n {
            return; // useless: never or always true
        }
        assert!(
            predicates.len() < u16::MAX as usize,
            "too many candidate predicates; use coarser binning"
        );
        predicates.push(pred);
        coverage.push(cov);
    }

    for (f, feat) in data.schema().features().iter().enumerate() {
        // Dispatch on the schema kind once per column, then scan the typed
        // slice — the per-row loops below are the level-1 hot path.
        match &feat.kind {
            FeatureKind::Categorical { levels } => {
                let vals = data.column(f).as_categorical();
                for level in 0..levels.len() as u32 {
                    let mut cov = BitSet::new(n);
                    for (r, &v) in vals.iter().enumerate() {
                        if v == level {
                            cov.insert(r);
                        }
                    }
                    push_into(
                        &mut predicates,
                        &mut coverage,
                        n,
                        Predicate::eq_level(f, level),
                        cov,
                    );
                }
            }
            FeatureKind::Numeric => {
                let vals = data.column(f).as_numeric();
                let bins = Bins::quantile(vals, max_bins);
                for &t in bins.thresholds() {
                    let mut lt_cov = BitSet::new(n);
                    let mut ge_cov = BitSet::new(n);
                    for (r, &v) in vals.iter().enumerate() {
                        if v < t {
                            lt_cov.insert(r);
                        } else {
                            ge_cov.insert(r);
                        }
                    }
                    push_into(
                        &mut predicates,
                        &mut coverage,
                        n,
                        Predicate::lt(f, t),
                        lt_cov,
                    );
                    push_into(
                        &mut predicates,
                        &mut coverage,
                        n,
                        Predicate::ge(f, t),
                        ge_cov,
                    );
                }
            }
        }
    }

    // The sensitive attribute's group boundary is always a candidate
    // threshold: fairness explanations routinely need exactly that split
    // (e.g. `age >= 45` in German Credit), and quantile bins have no reason
    // to land on it.
    if let gopher_data::schema::PrivilegedIf::AtLeast(cutoff) = data.protected().privileged {
        let f = data.protected().feature;
        let already = predicates.iter().any(|p: &Predicate| {
            p.feature == f && matches!(p.value, crate::PredValue::Threshold(t) if t == cutoff)
        });
        if !already {
            {
                // `AtLeast` protected specs are validated numeric at dataset
                // construction, so the typed accessor cannot panic here.
                let vals = data.column(f).as_numeric();
                let mut lt_cov = BitSet::new(n);
                let mut ge_cov = BitSet::new(n);
                for (r, &v) in vals.iter().enumerate() {
                    if v < cutoff {
                        lt_cov.insert(r);
                    } else {
                        ge_cov.insert(r);
                    }
                }
                push_into(
                    &mut predicates,
                    &mut coverage,
                    n,
                    Predicate::lt(f, cutoff),
                    lt_cov,
                );
                push_into(
                    &mut predicates,
                    &mut coverage,
                    n,
                    Predicate::ge(f, cutoff),
                    ge_cov,
                );
            }
        }
    }

    PredicateTable {
        predicates,
        coverage,
        n_rows: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_data::schema::{Feature, PrivilegedIf, ProtectedSpec, Schema};
    use gopher_data::Column;

    #[test]
    fn coverage_matches_matches() {
        let d = german(200, 51);
        let table = generate_predicates(&d, 4);
        assert!(!table.is_empty());
        for (id, pred) in table.iter() {
            let cov = table.coverage(id);
            for r in 0..d.n_rows() {
                assert_eq!(
                    cov.contains(r),
                    pred.matches(&d, r),
                    "coverage mismatch for {:?} at row {r}",
                    pred
                );
            }
        }
    }

    #[test]
    fn lt_and_ge_partition_rows() {
        let d = german(300, 52);
        let table = generate_predicates(&d, 4);
        // Every numeric threshold generates complementary covers. The twin
        // is located by `(feature, threshold)`, never by `id + 1`: the
        // empty/full filter can drop predicates, so adjacent ids are not a
        // twin relation — `id + 1` would read a different feature's
        // predicate (silently skipping the pair) or run off the end of the
        // table (an out-of-bounds panic when the last predicate is an `Lt`).
        let mut pairs = 0usize;
        for (id, pred) in table.iter() {
            if pred.op != crate::Op::Lt {
                continue;
            }
            let crate::PredValue::Threshold(t) = pred.value else {
                panic!("Lt predicates carry a numeric threshold");
            };
            let (twin_id, _) = table
                .iter()
                .find(|(_, q)| {
                    q.feature == pred.feature
                        && q.op == crate::Op::Ge
                        && matches!(q.value, crate::PredValue::Threshold(u) if u == t)
                })
                .unwrap_or_else(|| {
                    // An `Lt` and its `Ge` twin cover complementary row
                    // sets, so the empty/full filter drops both or neither.
                    panic!("Lt {pred:?} has no Ge twin at its threshold")
                });
            assert_eq!(
                table.coverage(id).count() + table.coverage(twin_id).count(),
                d.n_rows(),
                "Lt/Ge twins at {pred:?} must partition the rows"
            );
            pairs += 1;
        }
        assert!(pairs > 0, "german generates numeric threshold predicates");
    }

    #[test]
    fn empty_and_full_predicates_are_dropped() {
        // A categorical column where one level never occurs.
        let schema = Schema::new(vec![Feature::categorical("c", ["a", "b", "never"])], "y");
        let d = Dataset::new(
            schema,
            vec![Column::Categorical(vec![0, 1, 0, 1])],
            vec![0, 1, 0, 1],
            ProtectedSpec {
                feature: 0,
                privileged: PrivilegedIf::Level(0),
            },
        );
        let table = generate_predicates(&d, 4);
        // Only the two occurring levels produce predicates.
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn german_has_reasonable_candidate_count() {
        let d = german(1000, 53);
        let table = generate_predicates(&d, 4);
        // 13 features, mostly categorical with 2–5 levels + numeric bins:
        // expect tens of predicates, not thousands.
        assert!(table.len() >= 30, "{}", table.len());
        assert!(table.len() <= 120, "{}", table.len());
    }
}
