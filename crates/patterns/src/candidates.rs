//! Candidate predicate generation (the `Φ₁` loop of Algorithm 1).

use crate::bitset::BitSet;
use crate::predicate::Predicate;
use gopher_data::binning::Bins;
use gopher_data::{Dataset, FeatureKind};

/// All candidate predicates over a dataset, each with its precomputed
/// coverage bitset.
///
/// * categorical feature, level `v` → `X = v`;
/// * numeric feature, bin threshold `t` → `X < t` and `X ≥ t` (the paper's
///   `X = val` comparison is meaningless for binned numerics and omitted;
///   ranges arise as `X ≥ a ∧ X < b` during merging).
///
/// Predicates whose support is below the threshold or above
/// `1 − support_threshold`'s complement… are *kept* here — support filtering
/// belongs to the lattice (it owns the threshold); generation only drops
/// empty and full coverage sets, which can never appear in a useful pattern.
#[derive(Debug, Clone)]
pub struct PredicateTable {
    predicates: Vec<Predicate>,
    coverage: Vec<BitSet>,
    n_rows: usize,
}

impl PredicateTable {
    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True if no predicates were generated.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Number of dataset rows the coverage bitsets range over.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The predicate with the given id.
    pub fn predicate(&self, id: u16) -> &Predicate {
        &self.predicates[id as usize]
    }

    /// The coverage of the predicate with the given id.
    pub fn coverage(&self, id: u16) -> &BitSet {
        &self.coverage[id as usize]
    }

    /// Iterates `(id, predicate)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Predicate)> {
        self.predicates
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u16, p))
    }

    /// Incrementally re-anchors this table onto a post-delta dataset whose
    /// first rows are the *kept* old rows in their original order and whose
    /// tail is the appended delta: every surviving set bit is remapped by a
    /// prefix-sum shift (`new = old − #removed ≤ old`) instead of
    /// re-evaluating the predicate, and only the appended rows are matched
    /// from scratch. The predicate set itself — ids, thresholds, levels —
    /// is **frozen**: deltas never re-bin, and predicates that drift to
    /// empty or full coverage are kept so ids stay stable across updates
    /// (exactly the [`PredicateTable::rebuild_on`] contract, making the two
    /// bit-identical).
    ///
    /// Cost: `O(preds · words + |added| · preds)` — a word-at-a-time bit
    /// compaction per predicate (only words containing removed rows take a
    /// per-bit path) plus a predicate match per appended row, never
    /// `|removed| · len` predicate re-evaluations over the full table.
    ///
    /// # Panics
    /// If a removed index is out of range or `new_data` has fewer rows than
    /// the kept prefix implies.
    pub fn patch(&self, new_data: &Dataset, removed: &[usize]) -> PredicateTable {
        let n_old = self.n_rows;
        let n_new = new_data.n_rows();
        let mut removed_mask = vec![false; n_old];
        for &r in removed {
            assert!(r < n_old, "patch: removed row {r} out of range ({n_old})");
            removed_mask[r] = true;
        }
        let n_removed = removed_mask.iter().filter(|&&m| m).count();
        let keep = n_old - n_removed;
        assert!(
            n_new >= keep,
            "patch: new data has {n_new} rows but {keep} old rows were kept"
        );
        // Prefix-sum remap (old row r, if kept, lands at r − #removed ≤ r)
        // as a word-level bit compaction against the kept-row mask.
        let mut keep_set = BitSet::new(n_old);
        for (r, &gone) in removed_mask.iter().enumerate() {
            if !gone {
                keep_set.insert(r);
            }
        }
        let coverage = self
            .coverage
            .iter()
            .zip(&self.predicates)
            .map(|(cov, pred)| {
                let mut fresh = cov.compact(&keep_set, n_new);
                for a in keep..n_new {
                    if pred.matches(new_data, a) {
                        fresh.insert(a);
                    }
                }
                fresh
            })
            .collect();
        PredicateTable {
            predicates: self.predicates.clone(),
            coverage,
            n_rows: n_new,
        }
    }

    /// Cold-path oracle for [`PredicateTable::patch`]: re-evaluates this
    /// table's **frozen** predicate set (same ids, same thresholds — no
    /// re-binning, no empty/full filtering) against `data` from scratch.
    /// `patch` must be bit-identical to this for the same post-delta data.
    pub fn rebuild_on(&self, data: &Dataset) -> PredicateTable {
        let n = data.n_rows();
        let coverage = self
            .predicates
            .iter()
            .map(|pred| {
                let mut cov = BitSet::new(n);
                for r in 0..n {
                    if pred.matches(data, r) {
                        cov.insert(r);
                    }
                }
                cov
            })
            .collect();
        PredicateTable {
            predicates: self.predicates.clone(),
            coverage,
            n_rows: n,
        }
    }
}

/// Generates the candidate predicates for a dataset, binning numeric
/// features into at most `max_bins` quantile bins (paper §4.2: binning both
/// shrinks the search space and prevents near-duplicate explanations).
///
/// # Panics
/// If the number of generated predicates exceeds `u16::MAX` (raise the
/// binning coarseness instead of hitting this).
pub fn generate_predicates(data: &Dataset, max_bins: usize) -> PredicateTable {
    let n = data.n_rows();
    let mut predicates: Vec<Predicate> = Vec::new();
    let mut coverage: Vec<BitSet> = Vec::new();

    fn push_into(
        predicates: &mut Vec<Predicate>,
        coverage: &mut Vec<BitSet>,
        n: usize,
        pred: Predicate,
        cov: BitSet,
    ) {
        let count = cov.count();
        if count == 0 || count == n {
            return; // useless: never or always true
        }
        assert!(
            predicates.len() < u16::MAX as usize,
            "too many candidate predicates; use coarser binning"
        );
        predicates.push(pred);
        coverage.push(cov);
    }

    for (f, feat) in data.schema().features().iter().enumerate() {
        // Dispatch on the schema kind once per column, then scan the typed
        // slice — the per-row loops below are the level-1 hot path.
        match &feat.kind {
            FeatureKind::Categorical { levels } => {
                let vals = data.column(f).as_categorical();
                for level in 0..levels.len() as u32 {
                    let mut cov = BitSet::new(n);
                    for (r, &v) in vals.iter().enumerate() {
                        if v == level {
                            cov.insert(r);
                        }
                    }
                    push_into(
                        &mut predicates,
                        &mut coverage,
                        n,
                        Predicate::eq_level(f, level),
                        cov,
                    );
                }
            }
            FeatureKind::Numeric => {
                let vals = data.column(f).as_numeric();
                let bins = Bins::quantile(vals, max_bins);
                for &t in bins.thresholds() {
                    let mut lt_cov = BitSet::new(n);
                    let mut ge_cov = BitSet::new(n);
                    for (r, &v) in vals.iter().enumerate() {
                        if v < t {
                            lt_cov.insert(r);
                        } else {
                            ge_cov.insert(r);
                        }
                    }
                    push_into(
                        &mut predicates,
                        &mut coverage,
                        n,
                        Predicate::lt(f, t),
                        lt_cov,
                    );
                    push_into(
                        &mut predicates,
                        &mut coverage,
                        n,
                        Predicate::ge(f, t),
                        ge_cov,
                    );
                }
            }
        }
    }

    // The sensitive attribute's group boundary is always a candidate
    // threshold: fairness explanations routinely need exactly that split
    // (e.g. `age >= 45` in German Credit), and quantile bins have no reason
    // to land on it.
    if let gopher_data::schema::PrivilegedIf::AtLeast(cutoff) = data.protected().privileged {
        let f = data.protected().feature;
        let already = predicates.iter().any(|p: &Predicate| {
            p.feature == f && matches!(p.value, crate::PredValue::Threshold(t) if t == cutoff)
        });
        if !already {
            {
                // `AtLeast` protected specs are validated numeric at dataset
                // construction, so the typed accessor cannot panic here.
                let vals = data.column(f).as_numeric();
                let mut lt_cov = BitSet::new(n);
                let mut ge_cov = BitSet::new(n);
                for (r, &v) in vals.iter().enumerate() {
                    if v < cutoff {
                        lt_cov.insert(r);
                    } else {
                        ge_cov.insert(r);
                    }
                }
                push_into(
                    &mut predicates,
                    &mut coverage,
                    n,
                    Predicate::lt(f, cutoff),
                    lt_cov,
                );
                push_into(
                    &mut predicates,
                    &mut coverage,
                    n,
                    Predicate::ge(f, cutoff),
                    ge_cov,
                );
            }
        }
    }

    PredicateTable {
        predicates,
        coverage,
        n_rows: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_data::schema::{Feature, PrivilegedIf, ProtectedSpec, Schema};
    use gopher_data::Column;

    #[test]
    fn coverage_matches_matches() {
        let d = german(200, 51);
        let table = generate_predicates(&d, 4);
        assert!(!table.is_empty());
        for (id, pred) in table.iter() {
            let cov = table.coverage(id);
            for r in 0..d.n_rows() {
                assert_eq!(
                    cov.contains(r),
                    pred.matches(&d, r),
                    "coverage mismatch for {:?} at row {r}",
                    pred
                );
            }
        }
    }

    #[test]
    fn lt_and_ge_partition_rows() {
        let d = german(300, 52);
        let table = generate_predicates(&d, 4);
        // Every numeric threshold generates complementary covers. The twin
        // is located by `(feature, threshold)`, never by `id + 1`: the
        // empty/full filter can drop predicates, so adjacent ids are not a
        // twin relation — `id + 1` would read a different feature's
        // predicate (silently skipping the pair) or run off the end of the
        // table (an out-of-bounds panic when the last predicate is an `Lt`).
        let mut pairs = 0usize;
        for (id, pred) in table.iter() {
            if pred.op != crate::Op::Lt {
                continue;
            }
            let crate::PredValue::Threshold(t) = pred.value else {
                panic!("Lt predicates carry a numeric threshold");
            };
            let (twin_id, _) = table
                .iter()
                .find(|(_, q)| {
                    q.feature == pred.feature
                        && q.op == crate::Op::Ge
                        && matches!(q.value, crate::PredValue::Threshold(u) if u == t)
                })
                .unwrap_or_else(|| {
                    // An `Lt` and its `Ge` twin cover complementary row
                    // sets, so the empty/full filter drops both or neither.
                    panic!("Lt {pred:?} has no Ge twin at its threshold")
                });
            assert_eq!(
                table.coverage(id).count() + table.coverage(twin_id).count(),
                d.n_rows(),
                "Lt/Ge twins at {pred:?} must partition the rows"
            );
            pairs += 1;
        }
        assert!(pairs > 0, "german generates numeric threshold predicates");
    }

    #[test]
    fn empty_and_full_predicates_are_dropped() {
        // A categorical column where one level never occurs.
        let schema = Schema::new(vec![Feature::categorical("c", ["a", "b", "never"])], "y");
        let d = Dataset::new(
            schema,
            vec![Column::Categorical(vec![0, 1, 0, 1])],
            vec![0, 1, 0, 1],
            ProtectedSpec {
                feature: 0,
                privileged: PrivilegedIf::Level(0),
            },
        );
        let table = generate_predicates(&d, 4);
        // Only the two occurring levels produce predicates.
        assert_eq!(table.len(), 2);
    }

    /// `patch` against a removed-plus-appended delta must agree bit for bit
    /// with re-evaluating the frozen predicates on the new data.
    #[test]
    fn patch_is_bit_identical_to_rebuild_on() {
        let d = german(500, 54);
        let table = generate_predicates(&d, 4);
        let removed = vec![0usize, 7, 123, 499];
        let added = german(20, 99); // same generator → same schema
        let mut mask = vec![false; d.n_rows()];
        removed.iter().for_each(|&r| mask[r] = true);
        let new_data = d.remove_rows(&mask).concat(&added);

        let patched = table.patch(&new_data, &removed);
        let rebuilt = table.rebuild_on(&new_data);
        assert_eq!(patched.len(), rebuilt.len());
        assert_eq!(patched.n_rows(), new_data.n_rows());
        for (id, pred) in table.iter() {
            assert_eq!(
                patched.coverage(id),
                rebuilt.coverage(id),
                "coverage diverged for {pred:?}"
            );
        }
    }

    /// Removal-only and append-only deltas are the degenerate cases of the
    /// remap; both must still match the cold path.
    #[test]
    fn patch_handles_one_sided_deltas() {
        let d = german(300, 55);
        let table = generate_predicates(&d, 4);

        let removed = vec![299usize, 0, 150];
        let mut mask = vec![false; d.n_rows()];
        removed.iter().for_each(|&r| mask[r] = true);
        let shrunk = d.remove_rows(&mask);
        let patched = table.patch(&shrunk, &removed);
        let rebuilt = table.rebuild_on(&shrunk);
        for (id, _) in table.iter() {
            assert_eq!(patched.coverage(id), rebuilt.coverage(id));
        }

        let grown = d.concat(&german(15, 56));
        let patched = table.patch(&grown, &[]);
        let rebuilt = table.rebuild_on(&grown);
        for (id, _) in table.iter() {
            assert_eq!(patched.coverage(id), rebuilt.coverage(id));
        }
    }

    /// The frozen-predicate contract: a delta that drives a predicate's
    /// coverage empty keeps the predicate (and every id) in place.
    #[test]
    fn patch_keeps_ids_stable_when_coverage_empties() {
        let d = german(120, 57);
        let table = generate_predicates(&d, 4);
        // Remove every row a chosen predicate covers.
        let (victim, _) = table.iter().next().expect("german generates predicates");
        let removed: Vec<usize> = table.coverage(victim).iter().map(|r| r as usize).collect();
        let mut mask = vec![false; d.n_rows()];
        removed.iter().for_each(|&r| mask[r] = true);
        let shrunk = d.remove_rows(&mask);

        let patched = table.patch(&shrunk, &removed);
        assert_eq!(patched.len(), table.len(), "ids must stay stable");
        assert_eq!(patched.coverage(victim).count(), 0);
        for (id, p) in table.iter() {
            assert_eq!(patched.predicate(id), p);
        }
    }

    #[test]
    fn german_has_reasonable_candidate_count() {
        let d = german(1000, 53);
        let table = generate_predicates(&d, 4);
        // 13 features, mostly categorical with 2–5 levels + numeric bins:
        // expect tens of predicates, not thousands.
        assert!(table.len() >= 30, "{}", table.len());
        assert!(table.len() <= 120, "{}", table.len());
    }
}
