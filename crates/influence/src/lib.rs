//! Influence-function machinery: estimating the effect of removing a subset
//! of the training data on model parameters and on model bias, without
//! retraining (paper Section 4.1).
//!
//! # Objective and notation
//!
//! Training minimizes `J(θ) = (1/n) Σᵢ L(zᵢ, θ) + (λ/2)‖θ‖²`. At the trained
//! optimum θ*, define
//!
//! * `g_S  = Σ_{z∈S} ∇L(z, θ*)` — the subset's data-gradient sum,
//! * `g̃_S = g_S + mλθ*` — including the subset's share of the regularizer,
//! * `H    = (1/n) Σ ∇²L(z, θ*) + λI` — the full damped Hessian,
//! * `H̃_S = (1/m) Σ_{z∈S} ∇²L(z, θ*) + λI` — the subset's mean Hessian.
//!
//! Removing `S` (m = |S|) and retraining yields parameters whose exact
//! quadratic-model characterization is the **Newton step**
//! `Δθ = (nH − mH̃_S)⁻¹ g̃_S` (exact for quadratic losses; see the ridge
//! regression test). The estimators offered by [`Estimator`]:
//!
//! * [`Estimator::FirstOrder`] — the paper's FO influence: the sum of
//!   single-point influence functions, `Δθ = (1/n) H⁻¹ g_S` (Koh & Liang).
//! * [`Estimator::SecondOrder`] — the second-order group influence
//!   (Basu et al. 2020, paper Eq. 10): the Newton step's Neumann expansion
//!   truncated at second order,
//!   `Δθ = Δθ₁ + (m/n) H⁻¹ H̃_S Δθ₁` with `Δθ₁ = (1/n) H⁻¹ g̃_S`.
//!   The correction term couples the group members through their joint
//!   Hessian — exactly the correlation effect FO misses.
//! * [`Estimator::NewtonStep`] — solves the full Newton system by conjugate
//!   gradient (matrix-free). Our extension; a cheap high-accuracy reference.
//! * [`Estimator::OneStepGd`] — the paper's Eq. 13 surrogate: one explicit
//!   gradient-descent step away from the removed subset's pull.
//!
//! Bias changes follow by the chain rule (paper Eq. 11):
//! `ΔF ≈ ∇θF(θ*, D_test)ᵀ Δθ`, with `∇θF` from `gopher-fairness`.
//! [`BiasInfluence`] also supports re-evaluating the (hard or smooth) metric
//! at `θ* + Δθ`, which is often more faithful than the linearization.

#![forbid(unsafe_code)]

mod backend;
mod bias;
mod engine;
mod retrain;

pub use backend::{HessianBackend, InfluenceBackend, ModelFamily, SubsetScorer, UnlearningBackend};
pub use bias::{BiasEval, BiasInfluence, BiasPrecomp};
pub use engine::{EngineUpdateReport, Estimator, InfluenceConfig, InfluenceEngine};
pub use retrain::{
    retrain_updated, retrain_without, retrain_without_incremental, retrain_without_many,
    retrain_without_many_incremental, RetrainOutcome,
};
