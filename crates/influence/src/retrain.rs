//! Ground-truth retraining: the expensive baseline the estimators replace.

use gopher_data::Encoded;
use gopher_models::train::{fit_default, TrainReport};
use gopher_models::Model;

/// Result of a ground-truth retraining run.
#[derive(Debug, Clone)]
pub struct RetrainOutcome<M> {
    /// The retrained model.
    pub model: M,
    /// Training diagnostics.
    pub report: TrainReport,
}

/// Retrains a copy of `model` on `train` minus the given rows, warm-starting
/// from the current parameters (as the paper does to speed up the retraining
/// baseline).
pub fn retrain_without<M: Model>(model: &M, train: &Encoded, rows: &[u32]) -> RetrainOutcome<M> {
    let mut remove = vec![false; train.n_rows()];
    for &r in rows {
        remove[r as usize] = true;
    }
    let reduced = train.remove_rows(&remove);
    let mut retrained = model.clone();
    let report = fit_default(&mut retrained, &reduced);
    RetrainOutcome {
        model: retrained,
        report,
    }
}

/// Fans [`retrain_without`] out over many row subsets across up to
/// `threads` worker threads, returning one outcome per subset in input
/// order. Each retraining is independent (its own model clone and reduced
/// dataset), so results are bit-identical to a sequential loop at any
/// thread count. This is the ground-truth hot path of a top-k explanation:
/// `k` retrains per query, each a full Newton solve.
pub fn retrain_without_many<M: Model>(
    model: &M,
    train: &Encoded,
    subsets: &[Vec<u32>],
    threads: usize,
) -> Vec<RetrainOutcome<M>> {
    gopher_par::par_map(threads, subsets, |_, rows| {
        retrain_without(model, train, rows)
    })
}

/// Retrains a copy of `model` on an already-modified training set (used by
/// update-based explanations, where rows are perturbed instead of removed).
pub fn retrain_updated<M: Model>(model: &M, updated_train: &Encoded) -> RetrainOutcome<M> {
    let mut retrained = model.clone();
    let report = fit_default(&mut retrained, updated_train);
    RetrainOutcome {
        model: retrained,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_data::Encoder;
    use gopher_models::train::{fit_newton, objective, NewtonConfig};
    use gopher_models::LogisticRegression;

    #[test]
    fn retraining_without_rows_changes_model() {
        let raw = german(400, 41);
        let enc = Encoder::fit(&raw);
        let train = enc.transform(&raw);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        let rows: Vec<u32> = (0..40).collect();
        let outcome = retrain_without(&model, &train, &rows);
        assert!(outcome.report.converged);
        assert_ne!(outcome.model.params(), model.params());
        // The retrained model is optimal for the reduced set: its objective
        // there must not exceed the original model's.
        let mut remove = vec![false; train.n_rows()];
        rows.iter().for_each(|&r| remove[r as usize] = true);
        let reduced = train.remove_rows(&remove);
        assert!(objective(&outcome.model, &reduced) <= objective(&model, &reduced) + 1e-12);
    }

    #[test]
    fn retrain_fan_out_matches_sequential() {
        let raw = german(300, 43);
        let enc = Encoder::fit(&raw);
        let train = enc.transform(&raw);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        let subsets: Vec<Vec<u32>> = vec![
            (0..20).collect(),
            (50..90).collect(),
            (100..110).collect(),
            (200..260).collect(),
        ];
        let sequential: Vec<_> = subsets
            .iter()
            .map(|rows| retrain_without(&model, &train, rows))
            .collect();
        for threads in [1, 4] {
            let fanned = retrain_without_many(&model, &train, &subsets, threads);
            assert_eq!(fanned.len(), sequential.len());
            for (f, s) in fanned.iter().zip(&sequential) {
                assert_eq!(f.model.params(), s.model.params(), "threads={threads}");
                assert_eq!(f.report.converged, s.report.converged);
            }
        }
    }

    #[test]
    fn retrain_updated_trains_on_given_data() {
        let raw = german(300, 42);
        let enc = Encoder::fit(&raw);
        let train = enc.transform(&raw);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        // Flip some labels and retrain.
        let mut modified = train.clone();
        for y in modified.y.iter_mut().take(50) {
            *y = 1.0 - *y;
        }
        let outcome = retrain_updated(&model, &modified);
        assert!(outcome.report.converged);
        assert_ne!(outcome.model.params(), model.params());
    }
}
