//! Ground-truth retraining: the expensive baseline the estimators replace.

use crate::engine::InfluenceEngine;
use gopher_data::Encoded;
use gopher_linalg::vecops;
use gopher_models::train::{fit_default, full_gradient, objective, NewtonConfig, TrainReport};
use gopher_models::Differentiable;

/// Largest removal subset the Woodbury-modified solve handles; bigger
/// subsets (capacitance grows as `m³`) fall back to the from-scratch path.
const WOODBURY_MAX_RANK: usize = 64;

/// Quasi-Newton iterations allowed on the reduced objective before the
/// incremental path hands over to the line-searched trainer.
const INCREMENTAL_RETRAIN_MAX_ITER: usize = 25;

/// Result of a ground-truth retraining run.
#[derive(Debug, Clone)]
pub struct RetrainOutcome<M> {
    /// The retrained model.
    pub model: M,
    /// Training diagnostics.
    pub report: TrainReport,
}

/// Retrains a copy of `model` on `train` minus the given rows, warm-starting
/// from the current parameters (as the paper does to speed up the retraining
/// baseline).
pub fn retrain_without<M: Differentiable>(
    model: &M,
    train: &Encoded,
    rows: &[u32],
) -> RetrainOutcome<M> {
    let mut remove = vec![false; train.n_rows()];
    for &r in rows {
        remove[r as usize] = true;
    }
    let reduced = train.remove_rows(&remove);
    let mut retrained = model.clone();
    let report = fit_default(&mut retrained, &reduced);
    RetrainOutcome {
        model: retrained,
        report,
    }
}

/// Fans [`retrain_without`] out over many row subsets across up to
/// `threads` worker threads, returning one outcome per subset in input
/// order. Each retraining is independent (its own model clone and reduced
/// dataset), so results are bit-identical to a sequential loop at any
/// thread count. This is the ground-truth hot path of a top-k explanation:
/// `k` retrains per query, each a full Newton solve.
pub fn retrain_without_many<M: Differentiable>(
    model: &M,
    train: &Encoded,
    subsets: &[Vec<u32>],
    threads: usize,
) -> Vec<RetrainOutcome<M>> {
    gopher_par::par_map(threads, subsets, |_, rows| {
        retrain_without(model, train, rows)
    })
}

/// Incremental ground truth: retrains on `train` minus `rows` by
/// quasi-Newton steps whose directions reuse the engine's existing Cholesky
/// factor, modified for the removed rows by a rank-`m` Woodbury solve
/// instead of assembling and factoring a reduced Hessian per step.
///
/// Each iteration costs `O(n p)` for the true reduced gradient plus
/// `O((m + 1) p²)` for the modified solve — no `O(n p²)` Hessian assembly
/// anywhere. Convergence is judged on the true gradient of the reduced
/// objective (the Newton trainer's tolerance), so a converged result is the
/// same optimum [`retrain_without`] finds, independent of the approximation
/// quality of the step operator.
///
/// Falls back to [`retrain_without`] when the model exposes no rank-1
/// Hessian structure (the MLP), the subset exceeds the Woodbury rank cap,
/// or the modified solve goes singular; falls back to the line-searched
/// trainer when the quasi-Newton loop stalls. Either fallback still returns
/// a correct ground-truth retrain.
pub fn retrain_without_incremental<M: Differentiable>(
    engine: &InfluenceEngine<M>,
    train: &Encoded,
    rows: &[u32],
) -> RetrainOutcome<M> {
    let base = engine.model();
    if rows.len() > WOODBURY_MAX_RANK {
        return retrain_without(base, train, rows);
    }
    let p = base.n_params();
    let n = engine.n_train() as f64;
    // Rank-1 structure of each removed row at the engine's parameters; the
    // factor minus these outer products approximates the reduced Hessian.
    let mut augs: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    let mut weights: Vec<f64> = Vec::with_capacity(rows.len());
    let mut aug = vec![0.0; p];
    for &r in rows {
        let r = r as usize;
        match base.hessian_rank_one(train.x.row(r), train.y[r], &mut aug) {
            Some(w) => {
                if w != 0.0 {
                    augs.push(aug.clone());
                    weights.push(-w / n);
                }
            }
            None => return retrain_without(base, train, rows),
        }
    }
    let mut remove = vec![false; train.n_rows()];
    for &r in rows {
        remove[r as usize] = true;
    }
    let reduced = train.remove_rows(&remove);
    let m = rows.len() as f64;
    let u_refs: Vec<&[f64]> = augs.iter().map(|a| a.as_slice()).collect();
    let chol = engine.factor();
    let cfg = NewtonConfig::default();
    let mut model = base.clone();
    let mut grad = vec![0.0; p];
    for iter in 0..INCREMENTAL_RETRAIN_MAX_ITER {
        full_gradient(&model, &reduced, &mut grad);
        let grad_norm = vecops::norm2(&grad);
        if grad_norm < cfg.grad_tol {
            return RetrainOutcome {
                report: TrainReport {
                    iterations: iter,
                    final_loss: objective(&model, &reduced),
                    grad_norm,
                    converged: true,
                },
                model,
            };
        }
        let Some(mut step) = chol.solve_rank_k_modified(&u_refs, &weights, &grad) else {
            // Modified operator went singular: the factor is no longer a
            // usable base for this subset.
            return retrain_without(base, train, rows);
        };
        // The operator's data term is a sum over n − m rows divided by n;
        // rescale the step to the reduced objective's 1/(n − m) mean.
        vecops::scale(n / (n - m).max(1.0), &mut step);
        for (t, s) in model.params_mut().iter_mut().zip(&step) {
            *t -= s;
        }
    }
    // Stalled (piecewise-quadratic kinks, stale curvature): finish with the
    // line-searched trainer, warm from the progress made so far.
    let report = fit_default(&mut model, &reduced);
    RetrainOutcome { model, report }
}

/// Fans [`retrain_without_incremental`] out over many row subsets, mirroring
/// [`retrain_without_many`]. Outcomes are in input order and bit-identical
/// at any thread count (each retrain is independent).
pub fn retrain_without_many_incremental<M: Differentiable>(
    engine: &InfluenceEngine<M>,
    train: &Encoded,
    subsets: &[Vec<u32>],
    threads: usize,
) -> Vec<RetrainOutcome<M>> {
    gopher_par::par_map(threads, subsets, |_, rows| {
        retrain_without_incremental(engine, train, rows)
    })
}

/// Retrains a copy of `model` on an already-modified training set (used by
/// update-based explanations, where rows are perturbed instead of removed).
pub fn retrain_updated<M: Differentiable>(model: &M, updated_train: &Encoded) -> RetrainOutcome<M> {
    let mut retrained = model.clone();
    let report = fit_default(&mut retrained, updated_train);
    RetrainOutcome {
        model: retrained,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_data::Encoder;
    use gopher_models::train::{fit_newton, objective, NewtonConfig};
    use gopher_models::LogisticRegression;

    #[test]
    fn retraining_without_rows_changes_model() {
        let raw = german(400, 41);
        let enc = Encoder::fit(&raw);
        let train = enc.transform(&raw);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        let rows: Vec<u32> = (0..40).collect();
        let outcome = retrain_without(&model, &train, &rows);
        assert!(outcome.report.converged);
        assert_ne!(outcome.model.params(), model.params());
        // The retrained model is optimal for the reduced set: its objective
        // there must not exceed the original model's.
        let mut remove = vec![false; train.n_rows()];
        rows.iter().for_each(|&r| remove[r as usize] = true);
        let reduced = train.remove_rows(&remove);
        assert!(objective(&outcome.model, &reduced) <= objective(&model, &reduced) + 1e-12);
    }

    #[test]
    fn retrain_fan_out_matches_sequential() {
        let raw = german(300, 43);
        let enc = Encoder::fit(&raw);
        let train = enc.transform(&raw);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        let subsets: Vec<Vec<u32>> = vec![
            (0..20).collect(),
            (50..90).collect(),
            (100..110).collect(),
            (200..260).collect(),
        ];
        let sequential: Vec<_> = subsets
            .iter()
            .map(|rows| retrain_without(&model, &train, rows))
            .collect();
        for threads in [1, 4] {
            let fanned = retrain_without_many(&model, &train, &subsets, threads);
            assert_eq!(fanned.len(), sequential.len());
            for (f, s) in fanned.iter().zip(&sequential) {
                assert_eq!(f.model.params(), s.model.params(), "threads={threads}");
                assert_eq!(f.report.converged, s.report.converged);
            }
        }
    }

    #[test]
    fn incremental_retrain_matches_from_scratch() {
        let raw = german(400, 44);
        let enc = Encoder::fit(&raw);
        let train = enc.transform(&raw);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        let engine = crate::InfluenceEngine::new(model, &train, crate::InfluenceConfig::default());
        for rows in [
            (0..1).collect::<Vec<u32>>(),
            (10..40).collect(),
            vec![5, 99, 200, 399],
        ] {
            let scratch = retrain_without(engine.model(), &train, &rows);
            let incremental = retrain_without_incremental(&engine, &train, &rows);
            assert!(
                incremental.report.converged,
                "subset of {} rows",
                rows.len()
            );
            for (a, b) in incremental
                .model
                .params()
                .iter()
                .zip(scratch.model.params())
            {
                assert!(
                    (a - b).abs() < 1e-6,
                    "params diverged on {} rows: {a} vs {b}",
                    rows.len()
                );
            }
        }
    }

    #[test]
    fn incremental_fan_out_matches_sequential() {
        let raw = german(300, 45);
        let enc = Encoder::fit(&raw);
        let train = enc.transform(&raw);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        let engine = crate::InfluenceEngine::new(model, &train, crate::InfluenceConfig::default());
        let subsets: Vec<Vec<u32>> = vec![(0..15).collect(), (40..60).collect(), vec![250]];
        let sequential: Vec<_> = subsets
            .iter()
            .map(|rows| retrain_without_incremental(&engine, &train, rows))
            .collect();
        for threads in [1, 4] {
            let fanned = retrain_without_many_incremental(&engine, &train, &subsets, threads);
            for (f, s) in fanned.iter().zip(&sequential) {
                assert_eq!(f.model.params(), s.model.params(), "threads={threads}");
            }
        }
    }

    #[test]
    fn oversized_subset_falls_back_to_scratch_path() {
        let raw = german(300, 46);
        let enc = Encoder::fit(&raw);
        let train = enc.transform(&raw);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        let engine = crate::InfluenceEngine::new(model, &train, crate::InfluenceConfig::default());
        let rows: Vec<u32> = (0..100).collect(); // > WOODBURY_MAX_RANK
        let scratch = retrain_without(engine.model(), &train, &rows);
        let incremental = retrain_without_incremental(&engine, &train, &rows);
        assert_eq!(incremental.model.params(), scratch.model.params());
    }

    #[test]
    fn retrain_updated_trains_on_given_data() {
        let raw = german(300, 42);
        let enc = Encoder::fit(&raw);
        let train = enc.transform(&raw);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        // Flip some labels and retrain.
        let mut modified = train.clone();
        for y in modified.y.iter_mut().take(50) {
            *y = 1.0 - *y;
        }
        let outcome = retrain_updated(&model, &modified);
        assert!(outcome.report.converged);
        assert_ne!(outcome.model.params(), model.params());
    }
}
