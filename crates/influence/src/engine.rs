//! The influence engine: precomputation and parameter-change estimators.

use gopher_data::Encoded;
use gopher_linalg::{conjugate_gradient, vecops, Cholesky, Matrix};
use gopher_models::train::{fit_default, full_gradient, objective, NewtonConfig, TrainReport};
use gopher_models::Differentiable;

/// Relative parameter drift (since the last full Hessian assembly) beyond
/// which an incremental update gives up and rebuilds the engine from scratch.
/// The stored Hessian is evaluated at the parameters of the last full
/// assembly; each warm retrain moves θ a little, and once the accumulated
/// move exceeds this bound the curvature is considered stale. Estimator
/// error scales with the drift, so 1% staleness is well below the
/// approximation error of the influence estimators themselves.
const UPDATE_DRIFT_TOL: f64 = 1e-2;

/// Relative residual allowed between the patched Cholesky factor and the
/// incrementally assembled Hessian before falling back to refactorization.
const FACTOR_RESIDUAL_TOL: f64 = 1e-5;

/// Quasi-Newton iterations allowed for the warm retrain inside
/// [`InfluenceEngine::update`] before handing over to the full trainer.
const WARM_RETRAIN_MAX_ITER: usize = 12;

/// Which approximation of the retraining effect to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Estimator {
    /// Sum of single-point influence functions (paper §4.1.1, first order).
    FirstOrder,
    /// Second-order group influence (paper Eq. 10 / Basu et al. 2020).
    SecondOrder,
    /// Matrix-free Newton step on the reduced objective (our extension).
    NewtonStep,
    /// One explicit gradient-descent step (paper Eq. 13) with this learning
    /// rate.
    OneStepGd {
        /// Learning rate η of the single step.
        learning_rate: f64,
    },
}

impl Estimator {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Self::FirstOrder => "first-order IF",
            Self::SecondOrder => "second-order IF",
            Self::NewtonStep => "newton step",
            Self::OneStepGd { .. } => "one-step GD",
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct InfluenceConfig {
    /// Extra damping added to the Hessian before factorization (beyond the
    /// model's own λ). Escalated automatically if factorization fails, which
    /// happens for the non-convex MLP.
    pub damping: f64,
    /// Relative step for finite-difference Hessian assembly (models without
    /// analytic Hessians).
    pub fd_eps: f64,
    /// CG tolerance and iteration cap for [`Estimator::NewtonStep`].
    pub cg_tol: f64,
    /// Maximum CG iterations.
    pub cg_max_iter: usize,
}

impl Default for InfluenceConfig {
    fn default() -> Self {
        Self {
            damping: 1e-6,
            fd_eps: 1e-5,
            cg_tol: 1e-10,
            cg_max_iter: 500,
        }
    }
}

/// What [`InfluenceEngine::update`] did to absorb a training-set delta.
#[derive(Debug, Clone)]
pub struct EngineUpdateReport {
    /// The patched factor failed its residual probe (or a rank-1 downdate
    /// lost positive-definiteness) and the Hessian was refactored from the
    /// incrementally assembled matrix.
    pub refactored: bool,
    /// The whole engine was rebuilt from scratch (non-analytic model, warm
    /// retrain stall, or accumulated parameter drift beyond tolerance).
    pub full_rebuild: bool,
    /// Diagnostics of the warm retrain on the post-delta training set.
    pub retrain: TrainReport,
}

impl EngineUpdateReport {
    /// Whether either fallback (refactorization or full rebuild) fired.
    pub fn fell_back(&self) -> bool {
        self.refactored || self.full_rebuild
    }
}

/// Precomputed state for influence queries against one trained model.
///
/// Construction costs one pass to collect per-example gradients (`n × p`)
/// plus the Hessian assembly (`O(n p²)` for analytic models, `2p` full-data
/// gradient passes otherwise — this mirrors the paper's "pre-compute the
/// gradients and Hessian at start-up"). Each subsequent query is `O(m p)`
/// for the subset gradient plus `O(p²)` per solve.
pub struct InfluenceEngine<M: Differentiable> {
    model: M,
    /// Per-example data-term gradients at θ*, one row per training example.
    grads: Matrix,
    /// Damped full Hessian `H = (1/n) Σ ∇²L + λI + damping·I`.
    hessian: Matrix,
    chol: Cholesky,
    /// Damping actually applied (config damping, possibly escalated).
    damping_used: f64,
    config: InfluenceConfig,
    n: usize,
    /// Parameters at which the Hessian was last assembled in full; the drift
    /// bound in [`update`](Self::update) is measured against this point.
    hessian_theta: Vec<f64>,
}

impl<M: Differentiable> InfluenceEngine<M> {
    /// Precomputes gradients and the factored Hessian at the model's current
    /// parameters (assumed trained to a stationary point).
    ///
    /// # Panics
    /// If the training set is empty or the Hessian cannot be made positive
    /// definite even with escalated damping.
    pub fn new(model: M, train: &Encoded, config: InfluenceConfig) -> Self {
        let n = train.n_rows();
        assert!(n > 0, "influence engine needs a non-empty training set");
        let p = model.n_params();

        // Per-example gradients.
        let mut grads = Matrix::zeros(n, p);
        for r in 0..n {
            model.accumulate_grad(train.x.row(r), train.y[r], grads.row_mut(r));
        }

        // Hessian assembly.
        let mut hessian = Matrix::zeros(p, p);
        if model.has_analytic_hessian() {
            for r in 0..n {
                model.accumulate_hessian(train.x.row(r), train.y[r], &mut hessian);
            }
            hessian.scale(1.0 / n as f64);
        } else {
            // Column-wise central differences of the mean data gradient:
            // H[:, j] ≈ (ḡ(θ + εeⱼ) − ḡ(θ − εeⱼ)) / 2ε.
            let eps = config.fd_eps;
            let mut gp = vec![0.0; p];
            let mut gm = vec![0.0; p];
            for j in 0..p {
                let mut plus = model.clone();
                plus.params_mut()[j] += eps;
                let mut minus = model.clone();
                minus.params_mut()[j] -= eps;
                gp.iter_mut().for_each(|v| *v = 0.0);
                gm.iter_mut().for_each(|v| *v = 0.0);
                for r in 0..n {
                    plus.accumulate_grad(train.x.row(r), train.y[r], &mut gp);
                    minus.accumulate_grad(train.x.row(r), train.y[r], &mut gm);
                }
                let scale = 1.0 / (2.0 * eps * n as f64);
                for i in 0..p {
                    hessian[(i, j)] = (gp[i] - gm[i]) * scale;
                }
            }
            hessian.symmetrize();
        }
        hessian.add_diagonal(model.l2());

        let (chol, damping_used) = Cholesky::factor_damped(&hessian, config.damping, 24)
            .expect("Hessian must factor after damping escalation");
        // Keep the damped Hessian so all estimators see the same operator.
        hessian.add_diagonal(damping_used);

        let hessian_theta = model.params().to_vec();
        Self {
            model,
            grads,
            hessian,
            chol,
            damping_used,
            config,
            n,
            hessian_theta,
        }
    }

    /// Absorbs a training-set delta without rebuilding from scratch.
    ///
    /// `new_train` is the post-delta training set; `removed` and `added` are
    /// the encoded `(x, y)` rows that left and entered it. The engine
    /// 1. patches its damped mean Hessian exactly at the current parameters
    ///    (`S_new = S_old − Σ h_removed + Σ h_added`, `O(|Δ| p²)`),
    /// 2. patches the Cholesky factor with one rank-1 update/downdate per
    ///    delta row (via [`Model::hessian_rank_one`]) and verifies it against
    ///    the patched Hessian with a residual probe,
    /// 3. warm-retrains by quasi-Newton steps through the patched factor
    ///    until the true gradient norm on `new_train` meets the Newton
    ///    trainer's tolerance, and
    /// 4. recomputes all per-row gradients at the new optimum (`O(n p)`).
    ///
    /// Fallbacks: a failed downdate or probe refactors from the patched
    /// Hessian (`refactored`, `O(p³)`); a retrain stall, a non-analytic
    /// model, or accumulated parameter drift beyond `1e-3` relative rebuilds
    /// the engine in full (`full_rebuild`, `O(n p²)`). Either way the engine
    /// ends consistent with `new_train`.
    ///
    /// # Panics
    /// If `new_train` is empty or the refactorization cannot be made
    /// positive definite even with escalated damping.
    pub fn update(
        &mut self,
        new_train: &Encoded,
        removed: &[(&[f64], f64)],
        added: &[(&[f64], f64)],
    ) -> EngineUpdateReport {
        let n_new = new_train.n_rows();
        assert!(n_new > 0, "influence engine needs a non-empty training set");
        if !self.model.has_analytic_hessian() {
            // No per-row Hessian structure to patch: retrain and rebuild.
            let retrain = self.rebuild_from_scratch(new_train);
            return EngineUpdateReport {
                refactored: false,
                full_rebuild: true,
                retrain,
            };
        }
        let p = self.n_params();
        let n_old = self.n as f64;
        let c = self.model.l2() + self.damping_used;

        // Exact incremental Hessian at the engine's current parameters:
        // recover the raw per-row sum S from the stored damped mean, patch
        // it with the delta rows only, and re-normalize.
        let mut hessian_new = self.hessian.clone();
        hessian_new.add_diagonal(-c);
        hessian_new.scale(n_old);
        let mut delta = Matrix::zeros(p, p);
        for &(x, y) in added {
            self.model.accumulate_hessian(x, y, &mut delta);
        }
        hessian_new.add_scaled(1.0, &delta);
        let mut removed_sum = Matrix::zeros(p, p);
        for &(x, y) in removed {
            self.model.accumulate_hessian(x, y, &mut removed_sum);
        }
        hessian_new.add_scaled(-1.0, &removed_sum);
        hessian_new.scale(1.0 / n_new as f64);
        hessian_new.add_diagonal(c);

        // Patch the factor: rescale the data term to the new row count, then
        // one rank-1 update (added) or downdate (removed) per delta row.
        let mut chol = self.chol.clone();
        chol.scale(n_old / n_new as f64);
        let mut aug = vec![0.0; p];
        let mut patched = true;
        'patch: {
            for &(x, y) in added {
                match self.model.hessian_rank_one(x, y, &mut aug) {
                    Some(w) if w > 0.0 => {
                        let s = (w / n_new as f64).sqrt();
                        let v: Vec<f64> = aug.iter().map(|a| a * s).collect();
                        chol.rank_one_update(&v);
                    }
                    Some(_) => {}
                    None => {
                        patched = false;
                        break 'patch;
                    }
                }
            }
            for &(x, y) in removed {
                match self.model.hessian_rank_one(x, y, &mut aug) {
                    Some(w) if w > 0.0 => {
                        let s = (w / n_new as f64).sqrt();
                        let v: Vec<f64> = aug.iter().map(|a| a * s).collect();
                        if chol.rank_one_downdate(&v).is_err() {
                            // Factor is poisoned; discard it below.
                            patched = false;
                            break 'patch;
                        }
                    }
                    Some(_) => {}
                    None => {
                        patched = false;
                        break 'patch;
                    }
                }
            }
        }

        // Residual probe: the patched factor must reproduce the patched
        // Hessian (solve(H v) ≈ v). Catches downdate roundoff as well as the
        // deliberate diagonal discrepancy when |Δ| changes the row count.
        let verified = patched && {
            let probe: Vec<f64> = (0..p).map(|i| 1.0 / (i as f64 + 1.0)).collect();
            let hv = hessian_new.matvec(&probe);
            let back = chol.solve(&hv);
            let mut err = 0.0;
            let mut nrm = 0.0;
            for (b, v) in back.iter().zip(&probe) {
                err += (b - v) * (b - v);
                nrm += v * v;
            }
            let rel = (err / nrm).sqrt();
            rel.is_finite() && rel <= FACTOR_RESIDUAL_TOL
        };
        let refactored = !verified;
        if refactored {
            let (fresh, extra) = Cholesky::factor_damped(&hessian_new, 0.0, 24)
                .expect("patched Hessian must factor after damping escalation");
            chol = fresh;
            if extra > 0.0 {
                hessian_new.add_diagonal(extra);
                self.damping_used += extra;
            }
        }

        // Warm quasi-Newton retrain: steps through the (fixed) patched
        // factor, judged on the true gradient of the post-delta objective.
        let cfg = NewtonConfig::default();
        let mut model = self.model.clone();
        let mut grad = vec![0.0; p];
        let mut iterations = 0;
        let mut converged = false;
        for iter in 0..WARM_RETRAIN_MAX_ITER {
            full_gradient(&model, new_train, &mut grad);
            iterations = iter;
            if vecops::norm2(&grad) < cfg.grad_tol {
                converged = true;
                break;
            }
            let step = chol.solve(&grad);
            for (t, s) in model.params_mut().iter_mut().zip(&step) {
                *t -= s;
            }
        }
        if !converged {
            // The loop takes its last step without re-testing; check it.
            full_gradient(&model, new_train, &mut grad);
            converged = vecops::norm2(&grad) < cfg.grad_tol;
        }
        if !converged {
            // Stalled (e.g. an SVM support boundary crossing): hand over to
            // the line-searched trainer and rebuild everything at its answer.
            let retrain = self.rebuild_from_scratch(new_train);
            return EngineUpdateReport {
                refactored,
                full_rebuild: true,
                retrain,
            };
        }

        // Drift bound: the Hessian is still evaluated at the parameters of
        // the last full assembly. Once θ has wandered too far from there,
        // rebuild curvature in full at the converged parameters. θ itself is
        // exact either way (the retrain converged on the true gradient);
        // only estimator curvature is at stake.
        let drift_sq: f64 = model
            .params()
            .iter()
            .zip(&self.hessian_theta)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let drift = drift_sq.sqrt() / (1.0 + vecops::norm2(model.params()));
        if drift > UPDATE_DRIFT_TOL {
            let retrain = TrainReport {
                iterations,
                final_loss: objective(&model, new_train),
                grad_norm: vecops::norm2(&grad),
                converged: true,
            };
            *self = Self::new(model, new_train, self.config.clone());
            return EngineUpdateReport {
                refactored,
                full_rebuild: true,
                retrain,
            };
        }

        // Commit: per-row gradients are always recomputed in full at the new
        // optimum (exact, O(n p)); Hessian and factor keep their patched
        // forms.
        // Reuse the existing gradient storage when the row count is
        // unchanged (the common balanced-delta case): a fresh `zeros`
        // allocation of `n × p` would fault in every page again on each
        // update. Rows are zeroed immediately before accumulation, so the
        // recycled contents never leak through.
        let mut grads = std::mem::replace(&mut self.grads, Matrix::zeros(0, 0));
        if grads.rows() != n_new || grads.cols() != p {
            grads = Matrix::zeros(n_new, p);
        }
        // The same pass also sums the per-row losses, replacing a separate
        // `objective` sweep; the fused trait method is bit-identical to
        // loss-after-grad, and the row order matches `objective`'s, so the
        // reported final loss is exactly what the two-pass form computes.
        let mut data_loss = 0.0;
        for r in 0..n_new {
            let row = grads.row_mut(r);
            row.fill(0.0);
            data_loss += model.accumulate_grad_and_loss(new_train.x.row(r), new_train.y[r], row);
        }
        let theta = model.params();
        let final_loss = data_loss / n_new as f64 + 0.5 * model.l2() * vecops::dot(theta, theta);
        let retrain = TrainReport {
            iterations,
            final_loss,
            grad_norm: vecops::norm2(&grad),
            converged: true,
        };
        self.model = model;
        self.grads = grads;
        self.hessian = hessian_new;
        self.chol = chol;
        self.n = n_new;
        EngineUpdateReport {
            refactored,
            full_rebuild: false,
            retrain,
        }
    }

    /// Full-cost fallback: retrains with the default trainer (warm-started
    /// from the current parameters) and rebuilds every precomputed artifact.
    fn rebuild_from_scratch(&mut self, train: &Encoded) -> TrainReport {
        let mut model = self.model.clone();
        let report = fit_default(&mut model, train);
        *self = Self::new(model, train, self.config.clone());
        report
    }

    /// The model the engine was built around.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of training examples.
    pub fn n_train(&self) -> usize {
        self.n
    }

    /// The configuration the engine was built with (session updates clone
    /// it when constructing from-scratch reference engines).
    pub fn config(&self) -> &InfluenceConfig {
        &self.config
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.model.n_params()
    }

    /// The damping that was actually applied to the Hessian.
    pub fn damping_used(&self) -> f64 {
        self.damping_used
    }

    /// The Cholesky factor of the damped mean Hessian. Incremental
    /// retraining uses it as the base operator for Woodbury-modified solves.
    pub fn factor(&self) -> &Cholesky {
        &self.chol
    }

    /// The precomputed per-example gradient of training row `r`.
    pub fn row_gradient(&self, r: usize) -> &[f64] {
        self.grads.row(r)
    }

    /// `g_S = Σ_{z∈S} ∇L(z, θ*)` for the given training rows.
    pub fn subset_gradient(&self, rows: &[u32]) -> Vec<f64> {
        let mut g = vec![0.0; self.n_params()];
        for &r in rows {
            vecops::axpy(1.0, self.grads.row(r as usize), &mut g);
        }
        g
    }

    /// Applies the subset's mean Hessian (plus λI): `out = H̃_S · v`.
    ///
    /// Analytic models use per-row Hessian–vector products; others use a
    /// single central difference of the subset gradient along `v` (two
    /// subset-gradient passes).
    pub fn subset_hessian_vec(&self, train: &Encoded, rows: &[u32], v: &[f64]) -> Vec<f64> {
        let p = self.n_params();
        let m = rows.len().max(1) as f64;
        let mut out = vec![0.0; p];
        if rows.is_empty() {
            return out;
        }
        if self.model.has_analytic_hessian() {
            for &r in rows {
                let r = r as usize;
                self.model
                    .accumulate_hessian_vec(train.x.row(r), train.y[r], v, &mut out);
            }
        } else {
            let vnorm = vecops::norm_inf(v);
            if vnorm == 0.0 {
                return out;
            }
            let eps = self.config.fd_eps / vnorm;
            let mut plus = self.model.clone();
            for (t, vi) in plus.params_mut().iter_mut().zip(v) {
                *t += eps * vi;
            }
            let mut minus = self.model.clone();
            for (t, vi) in minus.params_mut().iter_mut().zip(v) {
                *t -= eps * vi;
            }
            let mut gp = vec![0.0; p];
            let mut gm = vec![0.0; p];
            for &r in rows {
                let r = r as usize;
                plus.accumulate_grad(train.x.row(r), train.y[r], &mut gp);
                minus.accumulate_grad(train.x.row(r), train.y[r], &mut gm);
            }
            let scale = 1.0 / (2.0 * eps);
            for ((o, a), b) in out.iter_mut().zip(&gp).zip(&gm) {
                *o = (a - b) * scale;
            }
        }
        // Mean over the subset, then the subset's regularizer share.
        let l2 = self.model.l2() + self.damping_used;
        for (o, vi) in out.iter_mut().zip(v) {
            *o = *o / m + l2 * vi;
        }
        out
    }

    /// Estimated parameter change `Δθ ≈ θ̄_S − θ*` caused by removing the
    /// given training rows and retraining.
    pub fn param_change(&self, train: &Encoded, rows: &[u32], estimator: Estimator) -> Vec<f64> {
        let p = self.n_params();
        if rows.is_empty() {
            return vec![0.0; p];
        }
        let n = self.n as f64;
        let m = rows.len() as f64;
        let g_s = self.subset_gradient(rows);
        match estimator {
            Estimator::FirstOrder => {
                // Δθ = (1/n) H⁻¹ g_S.
                let mut delta = self.chol.solve(&g_s);
                vecops::scale(1.0 / n, &mut delta);
                delta
            }
            Estimator::SecondOrder => {
                // Δθ₁ = (1/n) H⁻¹ g̃_S;  Δθ = Δθ₁ + (m/n) H⁻¹ (H̃_S Δθ₁).
                let g_tilde = self.add_reg_share(&g_s, m);
                let mut d1 = self.chol.solve(&g_tilde);
                vecops::scale(1.0 / n, &mut d1);
                let hs_d1 = self.subset_hessian_vec(train, rows, &d1);
                let mut corr = self.chol.solve(&hs_d1);
                vecops::scale(m / n, &mut corr);
                vecops::axpy(1.0, &d1, &mut corr);
                corr
            }
            Estimator::NewtonStep => {
                // Solve (nH − mH̃_S) Δθ = g̃_S by CG with a matrix-free
                // operator. The operator is SPD whenever m < n and the
                // damped H dominates (guaranteed for convex losses).
                let g_tilde = self.add_reg_share(&g_s, m);
                let apply = |v: &[f64]| -> Vec<f64> {
                    let mut hv = self.hessian.matvec(v);
                    vecops::scale(n, &mut hv);
                    let hs_v = self.subset_hessian_vec(train, rows, v);
                    vecops::axpy(-m, &hs_v, &mut hv);
                    hv
                };
                let out = conjugate_gradient(
                    apply,
                    &g_tilde,
                    self.config.cg_tol,
                    self.config.cg_max_iter.min(4 * p),
                );
                out.x
            }
            Estimator::OneStepGd { learning_rate } => {
                // Paper Eq. 13: θ̄ = θ − η(∇L(D, θ*) − (1/n) g_S), where
                // ∇L(D, θ*) is the mean data gradient (−λθ* at the optimum).
                let mut mean_grad = vec![0.0; p];
                for r in 0..self.n {
                    vecops::axpy(1.0, self.grads.row(r), &mut mean_grad);
                }
                vecops::scale(1.0 / n, &mut mean_grad);
                let mut delta = vec![0.0; p];
                for i in 0..p {
                    delta[i] = -learning_rate * (mean_grad[i] - g_s[i] / n);
                }
                delta
            }
        }
    }

    /// `g̃_S = g_S + m(λ + damping)θ*`.
    fn add_reg_share(&self, g_s: &[f64], m: f64) -> Vec<f64> {
        let l2 = self.model.l2() + self.damping_used;
        let mut g = g_s.to_vec();
        vecops::axpy(m * l2, self.model.params(), &mut g);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_data::Encoder;
    use gopher_models::train::{fit_newton, NewtonConfig};
    use gopher_models::{LogisticRegression, Model};

    impl Model for Ridge {
        fn n_inputs(&self) -> usize {
            self.n_inputs
        }
        fn predict_proba(&self, x: &[f64]) -> f64 {
            let z = vecops::dot(&self.params[..self.n_inputs], x) + self.params[self.n_inputs];
            z.clamp(0.0, 1.0)
        }
    }
    use gopher_prng::Rng;

    /// Ridge regression (squared loss) — quadratic, so the Newton estimator
    /// must match exact retraining to machine precision.
    #[derive(Debug, Clone)]
    struct Ridge {
        params: Vec<f64>,
        n_inputs: usize,
        l2: f64,
    }

    impl Differentiable for Ridge {
        fn n_params(&self) -> usize {
            self.n_inputs + 1
        }
        fn params(&self) -> &[f64] {
            &self.params
        }
        fn params_mut(&mut self) -> &mut [f64] {
            &mut self.params
        }
        fn l2(&self) -> f64 {
            self.l2
        }
        fn loss(&self, x: &[f64], y: f64) -> f64 {
            let z = vecops::dot(&self.params[..self.n_inputs], x) + self.params[self.n_inputs];
            0.5 * (z - y) * (z - y)
        }
        fn accumulate_grad(&self, x: &[f64], y: f64, out: &mut [f64]) {
            let z = vecops::dot(&self.params[..self.n_inputs], x) + self.params[self.n_inputs];
            let resid = z - y;
            vecops::axpy(resid, x, &mut out[..self.n_inputs]);
            out[self.n_inputs] += resid;
        }
        fn accumulate_grad_proba(&self, x: &[f64], out: &mut [f64]) {
            vecops::axpy(1.0, x, &mut out[..self.n_inputs]);
            out[self.n_inputs] += 1.0;
        }
        fn has_analytic_hessian(&self) -> bool {
            true
        }
        fn accumulate_hessian_vec(&self, x: &[f64], _y: f64, v: &[f64], out: &mut [f64]) {
            let xv = vecops::dot(x, &v[..self.n_inputs]) + v[self.n_inputs];
            vecops::axpy(xv, x, &mut out[..self.n_inputs]);
            out[self.n_inputs] += xv;
        }
    }

    fn random_encoded(n: usize, d: usize, seed: u64) -> Encoded {
        let mut rng = Rng::new(seed);
        let mut x = Matrix::zeros(n, d);
        let mut y = Vec::with_capacity(n);
        let mut privileged = Vec::with_capacity(n);
        for r in 0..n {
            for c in 0..d {
                x[(r, c)] = rng.normal();
            }
            y.push(if rng.bernoulli(0.5) { 1.0 } else { 0.0 });
            privileged.push(rng.bernoulli(0.5));
        }
        Encoded { x, y, privileged }
    }

    /// Closed-form ridge optimum on a dataset.
    fn ridge_fit(data: &Encoded, l2: f64) -> Ridge {
        let n = data.n_rows();
        let d = data.n_cols();
        let p = d + 1;
        let mut h = Matrix::zeros(p, p);
        let mut b = vec![0.0; p];
        for r in 0..n {
            let x = data.x.row(r);
            for i in 0..d {
                for j in 0..d {
                    h[(i, j)] += x[i] * x[j];
                }
                h[(i, d)] += x[i];
                h[(d, i)] += x[i];
                b[i] += x[i] * data.y[r];
            }
            h[(d, d)] += 1.0;
            b[d] += data.y[r];
        }
        h.scale(1.0 / n as f64);
        h.add_diagonal(l2);
        vecops::scale(1.0 / n as f64, &mut b);
        let chol = Cholesky::factor(&h).unwrap();
        let params = chol.solve(&b);
        Ridge {
            params,
            n_inputs: d,
            l2,
        }
    }

    #[test]
    fn newton_estimator_is_exact_for_quadratic_loss() {
        let data = random_encoded(200, 5, 1);
        let l2 = 0.1;
        let model = ridge_fit(&data, l2);
        let engine = InfluenceEngine::new(
            model.clone(),
            &data,
            InfluenceConfig {
                damping: 0.0,
                ..Default::default()
            },
        );
        // Remove 15% of rows.
        let rows: Vec<u32> = (0..30).collect();
        let delta = engine.param_change(&data, &rows, Estimator::NewtonStep);
        // Exact retraining on the remaining rows.
        let keep: Vec<usize> = (30..200).collect();
        let reduced = data.select_rows(&keep);
        let exact = ridge_fit(&reduced, l2);
        for j in 0..model.n_params() {
            let predicted = model.params()[j] + delta[j];
            assert!(
                (predicted - exact.params()[j]).abs() < 1e-8,
                "param {j}: newton {predicted} vs exact {}",
                exact.params()[j]
            );
        }
    }

    #[test]
    fn second_order_beats_first_order_for_quadratic_loss() {
        let data = random_encoded(300, 4, 2);
        let l2 = 0.05;
        let model = ridge_fit(&data, l2);
        let engine = InfluenceEngine::new(
            model.clone(),
            &data,
            InfluenceConfig {
                damping: 0.0,
                ..Default::default()
            },
        );
        let mut fo_err = 0.0;
        let mut so_err = 0.0;
        let mut rng = Rng::new(3);
        for trial in 0..5 {
            let m = 30 + trial * 15; // 10% … 30%
            let rows: Vec<u32> = rng
                .sample_indices(300, m)
                .into_iter()
                .map(|r| r as u32)
                .collect();
            let keep: Vec<usize> = (0..300).filter(|r| !rows.contains(&(*r as u32))).collect();
            let exact = ridge_fit(&data.select_rows(&keep), l2);
            let truth = vecops::sub(exact.params(), model.params());
            let fo = engine.param_change(&data, &rows, Estimator::FirstOrder);
            let so = engine.param_change(&data, &rows, Estimator::SecondOrder);
            fo_err += vecops::norm2(&vecops::sub(&fo, &truth));
            so_err += vecops::norm2(&vecops::sub(&so, &truth));
        }
        assert!(
            so_err < fo_err,
            "second order ({so_err}) should beat first order ({fo_err})"
        );
    }

    #[test]
    fn estimators_match_retraining_direction_on_logistic() {
        let raw = german(600, 21);
        let enc = Encoder::fit(&raw);
        let data = enc.transform(&raw);
        let mut model = LogisticRegression::new(data.n_cols(), 1e-3);
        fit_newton(&mut model, &data, &NewtonConfig::default());
        let engine = InfluenceEngine::new(model.clone(), &data, InfluenceConfig::default());
        // Remove a contiguous 10% block.
        let rows: Vec<u32> = (0..60).collect();
        let keep: Vec<usize> = (60..600).collect();
        let reduced = data.select_rows(&keep);
        let mut retrained = model.clone();
        fit_newton(&mut retrained, &reduced, &NewtonConfig::default());
        let truth = vecops::sub(retrained.params(), model.params());
        let truth_norm = vecops::norm2(&truth);
        assert!(truth_norm > 1e-6, "removal must move the parameters");
        for est in [
            Estimator::FirstOrder,
            Estimator::SecondOrder,
            Estimator::NewtonStep,
        ] {
            let delta = engine.param_change(&data, &rows, est);
            let cos =
                vecops::dot(&delta, &truth) / (vecops::norm2(&delta) * truth_norm).max(1e-300);
            assert!(cos > 0.9, "{}: cosine to ground truth {cos}", est.label());
        }
        // Newton should be the most accurate.
        let newton = engine.param_change(&data, &rows, Estimator::NewtonStep);
        let fo = engine.param_change(&data, &rows, Estimator::FirstOrder);
        let newton_err = vecops::norm2(&vecops::sub(&newton, &truth));
        let fo_err = vecops::norm2(&vecops::sub(&fo, &truth));
        assert!(
            newton_err <= fo_err,
            "newton err {newton_err} should not exceed FO err {fo_err}"
        );
    }

    #[test]
    fn empty_subset_changes_nothing() {
        let data = random_encoded(50, 3, 4);
        let model = ridge_fit(&data, 0.1);
        let engine = InfluenceEngine::new(model, &data, InfluenceConfig::default());
        for est in [
            Estimator::FirstOrder,
            Estimator::SecondOrder,
            Estimator::NewtonStep,
            Estimator::OneStepGd { learning_rate: 0.1 },
        ] {
            let delta = engine.param_change(&data, &[], est);
            assert_eq!(delta, vec![0.0; engine.n_params()], "{}", est.label());
        }
    }

    #[test]
    fn one_step_gd_points_along_subset_gradient() {
        let raw = german(300, 22);
        let enc = Encoder::fit(&raw);
        let data = enc.transform(&raw);
        let mut model = LogisticRegression::new(data.n_cols(), 1e-3);
        fit_newton(&mut model, &data, &NewtonConfig::default());
        let engine = InfluenceEngine::new(model, &data, InfluenceConfig::default());
        let rows: Vec<u32> = (0..30).collect();
        let delta = engine.param_change(&data, &rows, Estimator::OneStepGd { learning_rate: 0.5 });
        let g_s = engine.subset_gradient(&rows);
        // At the optimum, Δθ ≈ η(g_S/n + λθ*): dominated by g_S, so the
        // directions should be strongly aligned.
        let cos =
            vecops::dot(&delta, &g_s) / (vecops::norm2(&delta) * vecops::norm2(&g_s)).max(1e-300);
        assert!(cos > 0.95, "cosine {cos}");
    }

    /// German train set with rows `removed` dropped and `dup` duplicated at
    /// the tail — the frozen-encoder shape session updates produce.
    fn with_delta(data: &Encoded, removed: &[usize], dup: &[usize]) -> Encoded {
        let keep: Vec<usize> = (0..data.n_rows())
            .filter(|r| !removed.contains(r))
            .collect();
        let mut rows: Vec<Vec<f64>> = keep.iter().map(|&r| data.x.row(r).to_vec()).collect();
        let mut y: Vec<f64> = keep.iter().map(|&r| data.y[r]).collect();
        let mut privileged: Vec<bool> = keep.iter().map(|&r| data.privileged[r]).collect();
        for &r in dup {
            rows.push(data.x.row(r).to_vec());
            y.push(data.y[r]);
            privileged.push(data.privileged[r]);
        }
        Encoded {
            x: Matrix::from_rows(&rows),
            y,
            privileged,
        }
    }

    fn delta_pairs(data: &Encoded, rows: &[usize]) -> Vec<(Vec<f64>, f64)> {
        rows.iter()
            .map(|&r| (data.x.row(r).to_vec(), data.y[r]))
            .collect()
    }

    fn as_refs(pairs: &[(Vec<f64>, f64)]) -> Vec<(&[f64], f64)> {
        pairs.iter().map(|(x, y)| (x.as_slice(), *y)).collect()
    }

    fn fitted_engine(n: usize, seed: u64) -> (Encoded, InfluenceEngine<LogisticRegression>) {
        let raw = german(n, seed);
        let enc = Encoder::fit(&raw);
        let data = enc.transform(&raw);
        let mut model = LogisticRegression::new(data.n_cols(), 1e-3);
        fit_newton(&mut model, &data, &NewtonConfig::default());
        let engine = InfluenceEngine::new(model, &data, InfluenceConfig::default());
        (data, engine)
    }

    #[test]
    fn incremental_hessian_matches_full_assembly() {
        // Small |Δ|/n keeps the parameter drift inside the incremental
        // regime (percent-level deltas legitimately trigger a full rebuild).
        let (data, mut engine) = fitted_engine(4000, 31);
        let theta_old = engine.model().params().to_vec();
        let removed: Vec<usize> = (0..2).collect();
        let dup: Vec<usize> = (100..102).collect();
        let new_train = with_delta(&data, &removed, &dup);
        let rm = delta_pairs(&data, &removed);
        let add = delta_pairs(&data, &dup);
        let report = engine.update(&new_train, &as_refs(&rm), &as_refs(&add));
        assert!(!report.full_rebuild, "small delta must stay incremental");
        assert!(report.retrain.converged);
        // Assemble the Hessian in full at the *old* parameters — the point
        // the incremental patch was evaluated at — and compare.
        let mut frozen = engine.model().clone();
        frozen.params_mut().copy_from_slice(&theta_old);
        let p = frozen.n_params();
        let mut full = Matrix::zeros(p, p);
        for r in 0..new_train.n_rows() {
            frozen.accumulate_hessian(new_train.x.row(r), new_train.y[r], &mut full);
        }
        full.scale(1.0 / new_train.n_rows() as f64);
        full.add_diagonal(frozen.l2() + engine.damping_used());
        let scale = full.max_abs();
        for i in 0..p {
            for j in 0..p {
                let diff = (engine.hessian[(i, j)] - full[(i, j)]).abs();
                assert!(
                    diff <= 1e-9 * scale,
                    "H[({i},{j})]: incremental {} vs full {}",
                    engine.hessian[(i, j)],
                    full[(i, j)]
                );
            }
        }
    }

    #[test]
    fn updated_engine_matches_fresh_engine() {
        let (data, mut engine) = fitted_engine(4000, 32);
        let removed: Vec<usize> = vec![3, 77, 201];
        let dup: Vec<usize> = vec![10, 11, 12];
        let new_train = with_delta(&data, &removed, &dup);
        let rm = delta_pairs(&data, &removed);
        let add = delta_pairs(&data, &dup);
        let report = engine.update(&new_train, &as_refs(&rm), &as_refs(&add));
        assert!(report.retrain.converged);
        assert!(!report.full_rebuild, "small delta must stay incremental");
        // A from-scratch session on the post-delta data reaches the same
        // (unique, convex) optimum.
        let mut fresh = LogisticRegression::new(new_train.n_cols(), 1e-3);
        let fresh_report = fit_newton(&mut fresh, &new_train, &NewtonConfig::default());
        assert!(fresh_report.converged);
        for (a, b) in engine.model().params().iter().zip(fresh.params()) {
            assert!((a - b).abs() < 1e-6, "params diverged: {a} vs {b}");
        }
        // And the estimators agree with a fresh engine's to within the
        // documented curvature-staleness bound (the updated engine's Hessian
        // is evaluated at the pre-delta parameters).
        let fresh_engine = InfluenceEngine::new(fresh, &new_train, InfluenceConfig::default());
        let rows: Vec<u32> = (0..25).collect();
        for est in [Estimator::FirstOrder, Estimator::SecondOrder] {
            let a = engine.param_change(&new_train, &rows, est);
            let b = fresh_engine.param_change(&new_train, &rows, est);
            let rel = vecops::norm2(&vecops::sub(&a, &b)) / vecops::norm2(&b).max(1e-300);
            assert!(rel < 1e-2, "{}: relative gap {rel}", est.label());
        }
    }

    #[test]
    fn adversarial_downdate_falls_back_to_refactor() {
        let (data, mut engine) = fitted_engine(200, 33);
        // Claim row 0 was removed far more times than it exists: the
        // downdates drive the factor (and the patched Hessian) indefinite.
        let rm: Vec<(Vec<f64>, f64)> = (0..120)
            .map(|_| (data.x.row(0).to_vec(), data.y[0]))
            .collect();
        let report = engine.update(&data, &as_refs(&rm), &[]);
        assert!(
            report.refactored,
            "losing definiteness must trigger refactorization"
        );
        // The training set itself is unchanged, so θ stays optimal.
        assert!(report.retrain.converged);
    }

    #[test]
    fn update_on_mlp_rebuilds_in_full() {
        let raw = german(150, 34);
        let enc = Encoder::fit(&raw);
        let data = enc.transform(&raw);
        let mut rng = Rng::new(7);
        let mut model = gopher_models::Mlp::new(data.n_cols(), 4, 1e-3, &mut rng);
        gopher_models::train::fit_gd(
            &mut model,
            &data,
            &gopher_models::train::GdConfig {
                max_epochs: 300,
                grad_tol: 1e-4,
                ..Default::default()
            },
        );
        let mut engine = InfluenceEngine::new(model, &data, InfluenceConfig::default());
        let new_train = with_delta(&data, &[0], &[1]);
        let rm = delta_pairs(&data, &[0]);
        let add = delta_pairs(&data, &[1]);
        let report = engine.update(&new_train, &as_refs(&rm), &as_refs(&add));
        assert!(report.full_rebuild, "MLP has no rank-1 structure to patch");
        assert_eq!(engine.n_train(), new_train.n_rows());
    }

    #[test]
    fn subset_gradient_sums_rows() {
        let data = random_encoded(20, 3, 5);
        let model = ridge_fit(&data, 0.2);
        let engine = InfluenceEngine::new(model, &data, InfluenceConfig::default());
        let g = engine.subset_gradient(&[2, 7]);
        let expected = vecops::add(engine.row_gradient(2), engine.row_gradient(7));
        for (a, b) in g.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
