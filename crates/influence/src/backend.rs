//! Pluggable influence backends: one estimator stack per model family.
//!
//! The Pradhan et al. pipeline needs four capabilities from its influence
//! layer — score a training subset's responsibility for a bias metric,
//! produce the ground-truth retrained model for a subset, precompute
//! per-metric state, and absorb training-data deltas incrementally. For the
//! differentiable families those are Hessian-based influence functions
//! ([`InfluenceEngine`], wrapped here as [`HessianBackend`]); for tree
//! ensembles they are exact machine unlearning (Surve & Pradhan,
//! [`UnlearningBackend`]). [`InfluenceBackend`] is the seam between the two:
//! the explanation session is generic over it and never mentions gradients.
//!
//! [`ModelFamily`] closes the loop by naming, for each model type, its
//! backend and its default training procedure — the two facts a session
//! builder needs that `Model` alone cannot provide.
//!
//! **Bit-identity contract**: for lr/svm/mlp, every path through
//! [`HessianBackend`] is a pure delegation to the exact code the session
//! called before the trait existed — same `BiasInfluence` construction per
//! sweep, same warm-started retrains, same engine delta — so explanations
//! are bit-identical through the trait (pinned by the
//! `influence_backend` integration tests).

use crate::bias::{BiasEval, BiasInfluence, BiasPrecomp};
use crate::engine::{EngineUpdateReport, Estimator, InfluenceConfig, InfluenceEngine};
use crate::retrain::{retrain_without, retrain_without_many};
use gopher_data::Encoded;
use gopher_fairness::FairnessMetric;
use gopher_models::train::{fit_default, TrainReport};
use gopher_models::{Differentiable, Forest, LinearSvm, LogisticRegression, Mlp, Model};

/// A per-subset responsibility scorer for one sweep: maps covered training
/// rows to `R_F(S)`. Built once per sweep member and invoked once per
/// candidate pattern.
pub type SubsetScorer<'a> = Box<dyn Fn(&[u32]) -> f64 + Send + Sync + 'a>;

/// The influence estimator stack behind an explanation session: everything
/// the session needs from "how does removing training rows change the
/// model" without committing to gradients.
///
/// Implementations must be deterministic at any thread count: a scorer is
/// called from parallel sweep workers and its value for a subset must not
/// depend on call order.
pub trait InfluenceBackend: Send + Sync {
    /// The model family this backend estimates influence for.
    type Model: Model;

    /// Builds the backend around an **already trained** model. For
    /// Hessian-based backends this is where gradients and the factored
    /// Hessian are precomputed; for unlearning it is a cheap wrap.
    fn build(model: Self::Model, train: &Encoded, config: InfluenceConfig) -> Self;

    /// The trained model.
    fn model(&self) -> &Self::Model;

    /// Number of training rows the backend currently reflects.
    fn n_train(&self) -> usize;

    /// The influence configuration the backend was built with.
    fn config(&self) -> &InfluenceConfig;

    /// Per-metric precomputation (baseline biases, and the metric gradient
    /// where the family has one). Sessions cache one per metric.
    fn precompute(&self, metric: FairnessMetric, test: &Encoded) -> BiasPrecomp;

    /// A responsibility scorer for one sweep over `train`, specialized to
    /// `(metric, estimator, eval)`. `precomp` must come from
    /// [`precompute`](Self::precompute) (or a cache of it) for the same
    /// metric and test set.
    ///
    /// Families without parameter gradients document how they interpret
    /// `estimator`/`eval` (the unlearning backend ignores the estimator and
    /// re-evaluates the metric directly).
    fn scorer<'a>(
        &'a self,
        train: &'a Encoded,
        test: &'a Encoded,
        metric: FairnessMetric,
        precomp: BiasPrecomp,
        estimator: Estimator,
        eval: BiasEval,
    ) -> SubsetScorer<'a>;

    /// Ground-truth oracle: the model retrained from scratch without the
    /// given rows.
    fn ground_truth_model(&self, train: &Encoded, rows: &[u32]) -> Self::Model;

    /// Fans [`ground_truth_model`](Self::ground_truth_model) out over many
    /// subsets across up to `threads` workers; results are in input order
    /// and bit-identical at any thread count.
    fn ground_truth_models(
        &self,
        train: &Encoded,
        subsets: &[Vec<u32>],
        threads: usize,
    ) -> Vec<Self::Model>;

    /// Absorbs a training-data delta incrementally. `old_train` is the
    /// pre-delta encoded training set (row ids in `removed_rows` index into
    /// it), `new_train` the post-delta one; `removed`/`added` are the delta
    /// rows as `(features, label)` pairs. Returns the same diagnostics shape
    /// as the engine's delta path so sessions report fallbacks uniformly.
    fn update(
        &mut self,
        old_train: &Encoded,
        new_train: &Encoded,
        removed_rows: &[usize],
        removed: &[(&[f64], f64)],
        added: &[(&[f64], f64)],
    ) -> EngineUpdateReport;
}

/// A model family: a [`Model`] that knows its default training procedure
/// and which [`InfluenceBackend`] estimates influence for it. This is the
/// bound session builders and CLI dispatch are generic over.
pub trait ModelFamily: Model {
    /// The influence backend for this family.
    type Backend: InfluenceBackend<Model = Self>;

    /// Trains the model to its family's convergence criterion (Newton/GD
    /// for the differentiable families, greedy tree growth for forests).
    fn fit(&mut self, train: &Encoded) -> TrainReport;
}

/// The Hessian-based influence backend: a transparent wrapper around
/// [`InfluenceEngine`] for any [`Differentiable`] family. Every method is a
/// pure delegation, which is what keeps lr/svm/mlp explanations
/// bit-identical through the trait seam.
pub struct HessianBackend<M: Differentiable> {
    engine: InfluenceEngine<M>,
}

impl<M: Differentiable> HessianBackend<M> {
    /// The wrapped influence engine, for Hessian-only queries (per-row
    /// gradients, parameter changes, the factored Hessian). Only reachable
    /// when the session's family actually *is* Hessian-backed — forest
    /// sessions fail to type-check here instead of panicking.
    pub fn engine(&self) -> &InfluenceEngine<M> {
        &self.engine
    }
}

impl<M: Differentiable> InfluenceBackend for HessianBackend<M> {
    type Model = M;

    fn build(model: M, train: &Encoded, config: InfluenceConfig) -> Self {
        Self {
            engine: InfluenceEngine::new(model, train, config),
        }
    }

    fn model(&self) -> &M {
        self.engine.model()
    }

    fn n_train(&self) -> usize {
        self.engine.n_train()
    }

    fn config(&self) -> &InfluenceConfig {
        self.engine.config()
    }

    fn precompute(&self, metric: FairnessMetric, test: &Encoded) -> BiasPrecomp {
        BiasPrecomp::compute(metric, self.engine.model(), test)
    }

    fn scorer<'a>(
        &'a self,
        train: &'a Encoded,
        test: &'a Encoded,
        metric: FairnessMetric,
        precomp: BiasPrecomp,
        estimator: Estimator,
        eval: BiasEval,
    ) -> SubsetScorer<'a> {
        let bi = BiasInfluence::from_precomp(&self.engine, metric, test, precomp);
        Box::new(move |rows: &[u32]| bi.responsibility(train, rows, estimator, eval))
    }

    fn ground_truth_model(&self, train: &Encoded, rows: &[u32]) -> M {
        retrain_without(self.engine.model(), train, rows).model
    }

    fn ground_truth_models(&self, train: &Encoded, subsets: &[Vec<u32>], threads: usize) -> Vec<M> {
        retrain_without_many(self.engine.model(), train, subsets, threads)
            .into_iter()
            .map(|outcome| outcome.model)
            .collect()
    }

    fn update(
        &mut self,
        _old_train: &Encoded,
        new_train: &Encoded,
        _removed_rows: &[usize],
        removed: &[(&[f64], f64)],
        added: &[(&[f64], f64)],
    ) -> EngineUpdateReport {
        self.engine.update(new_train, removed, added)
    }
}

/// Example-based influence for [`Forest`] via exact machine unlearning:
/// a subset's responsibility is measured by *actually removing* its rows
/// from every tree's bootstrap sample (leaf statistics updated, only
/// affected nodes re-split) and re-evaluating the fairness metric — no
/// gradients anywhere. The ground-truth oracle is a scratch retrain (fresh
/// bootstraps and cutpoints on the reduced data), so the estimator/oracle
/// gap is exactly the bootstrap resampling noise the unlearning literature
/// measures against.
pub struct UnlearningBackend {
    forest: Forest,
    n_train: usize,
    config: InfluenceConfig,
}

impl UnlearningBackend {
    /// The unlearned-family model.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }
}

impl InfluenceBackend for UnlearningBackend {
    type Model = Forest;

    /// # Panics
    /// If the forest has not been fit, or was fit on a different number of
    /// rows than `train` has.
    fn build(model: Forest, train: &Encoded, config: InfluenceConfig) -> Self {
        assert!(model.is_fit(), "UnlearningBackend needs a fitted Forest");
        assert_eq!(
            model.n_train_rows(),
            train.n_rows(),
            "forest was fit on a different training set"
        );
        Self {
            forest: model,
            n_train: train.n_rows(),
            config,
        }
    }

    fn model(&self) -> &Forest {
        &self.forest
    }

    fn n_train(&self) -> usize {
        self.n_train
    }

    fn config(&self) -> &InfluenceConfig {
        &self.config
    }

    /// No parameter vector means no metric gradient: `grad_f` stays empty
    /// and only the baselines are populated.
    fn precompute(&self, metric: FairnessMetric, test: &Encoded) -> BiasPrecomp {
        BiasPrecomp {
            grad_f: Vec::new(),
            base_hard: gopher_fairness::bias(metric, &self.forest, test),
            base_smooth: gopher_fairness::smooth_bias(metric, &self.forest, test),
        }
    }

    /// The `estimator` is ignored — unlearning *is* the estimator. `eval`
    /// keeps its spirit: `ReEvalSmooth` re-evaluates the smooth metric on
    /// the unlearned forest, while `ChainRule` (meaningless without a
    /// gradient) and `ReEvalHard` both re-evaluate the hard metric.
    fn scorer<'a>(
        &'a self,
        train: &'a Encoded,
        test: &'a Encoded,
        metric: FairnessMetric,
        precomp: BiasPrecomp,
        _estimator: Estimator,
        eval: BiasEval,
    ) -> SubsetScorer<'a> {
        let base_hard = precomp.base_hard;
        let base_smooth = precomp.base_smooth;
        Box::new(move |rows: &[u32]| {
            if base_hard.abs() < 1e-12 {
                return 0.0;
            }
            let unlearned = self.forest.unlearn(train, rows);
            let delta = match eval {
                BiasEval::ReEvalSmooth => {
                    gopher_fairness::smooth_bias(metric, &unlearned, test) - base_smooth
                }
                BiasEval::ChainRule | BiasEval::ReEvalHard => {
                    gopher_fairness::bias(metric, &unlearned, test) - base_hard
                }
            };
            -delta / base_hard
        })
    }

    fn ground_truth_model(&self, train: &Encoded, rows: &[u32]) -> Forest {
        let mut remove = vec![false; train.n_rows()];
        for &r in rows {
            remove[r as usize] = true;
        }
        let reduced = train.remove_rows(&remove);
        let mut forest = Forest::new(self.forest.n_inputs(), self.forest.config().clone());
        forest.fit(&reduced);
        forest
    }

    fn ground_truth_models(
        &self,
        train: &Encoded,
        subsets: &[Vec<u32>],
        threads: usize,
    ) -> Vec<Forest> {
        gopher_par::par_map(threads, subsets, |_, rows| {
            self.ground_truth_model(train, rows)
        })
    }

    /// Removals are **exact**: every tree unlearns the rows from its
    /// bootstrap sample and row ids are renumbered to the compacted
    /// training set. Additions are where per-tree unlearning is inexact —
    /// bootstrap membership of rows that never existed at fit time is
    /// undefined — so any added row triggers the documented full-rebuild
    /// fallback: a scratch refit on the new training set
    /// (`full_rebuild: true` in the report, mirroring the engine's
    /// non-analytic path).
    fn update(
        &mut self,
        old_train: &Encoded,
        new_train: &Encoded,
        removed_rows: &[usize],
        _removed: &[(&[f64], f64)],
        added: &[(&[f64], f64)],
    ) -> EngineUpdateReport {
        if added.is_empty() {
            let mut removed: Vec<u32> = removed_rows.iter().map(|&r| r as u32).collect();
            removed.sort_unstable();
            self.forest.unlearn_in_place(old_train, &removed);
            self.forest.remap_after_removal(&removed);
            self.n_train = new_train.n_rows();
            EngineUpdateReport {
                refactored: false,
                full_rebuild: false,
                retrain: train_error_report(&self.forest, new_train, 0),
            }
        } else {
            let mut forest = Forest::new(self.forest.n_inputs(), self.forest.config().clone());
            let retrain = forest.fit(new_train);
            self.forest = forest;
            self.n_train = new_train.n_rows();
            EngineUpdateReport {
                refactored: false,
                full_rebuild: true,
                retrain,
            }
        }
    }
}

/// A [`TrainReport`] in the trainer's shape for a forest that was *not*
/// refit: training error as the loss, no gradient, trivially converged.
fn train_error_report(forest: &Forest, train: &Encoded, iterations: usize) -> TrainReport {
    let n = train.n_rows();
    let errors = (0..n)
        .filter(|&r| forest.predict(train.x.row(r)) != train.y[r])
        .count();
    TrainReport {
        iterations,
        final_loss: errors as f64 / n.max(1) as f64,
        grad_norm: 0.0,
        converged: true,
    }
}

impl ModelFamily for LogisticRegression {
    type Backend = HessianBackend<Self>;
    fn fit(&mut self, train: &Encoded) -> TrainReport {
        fit_default(self, train)
    }
}

impl ModelFamily for LinearSvm {
    type Backend = HessianBackend<Self>;
    fn fit(&mut self, train: &Encoded) -> TrainReport {
        fit_default(self, train)
    }
}

impl ModelFamily for Mlp {
    type Backend = HessianBackend<Self>;
    fn fit(&mut self, train: &Encoded) -> TrainReport {
        fit_default(self, train)
    }
}

impl ModelFamily for Forest {
    type Backend = UnlearningBackend;
    fn fit(&mut self, train: &Encoded) -> TrainReport {
        Forest::fit(self, train)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_data::Encoder;
    use gopher_models::ForestConfig;
    use gopher_prng::Rng;

    fn split(n: usize, seed: u64) -> (Encoded, Encoded) {
        let mut rng = Rng::new(seed);
        let (train_raw, test_raw) = german(n, seed).train_test_split(0.3, &mut rng);
        let enc = Encoder::fit(&train_raw);
        (enc.transform(&train_raw), enc.transform(&test_raw))
    }

    /// The refactor-identity pin at the unit level: the backend's scorer is
    /// the exact same arithmetic as a hand-built `BiasInfluence`.
    #[test]
    fn hessian_scorer_is_bit_identical_to_direct_bias_influence() {
        let (train, test) = split(600, 21);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        ModelFamily::fit(&mut model, &train);
        let backend: HessianBackend<LogisticRegression> =
            InfluenceBackend::build(model, &train, InfluenceConfig::default());
        let metric = FairnessMetric::StatisticalParity;
        let precomp = backend.precompute(metric, &test);
        let bi = BiasInfluence::from_precomp(backend.engine(), metric, &test, precomp.clone());
        let scorer = backend.scorer(
            &train,
            &test,
            metric,
            precomp,
            Estimator::SecondOrder,
            BiasEval::ChainRule,
        );
        for rows in [
            (0..30u32).collect::<Vec<u32>>(),
            (100..140).collect(),
            vec![7, 9, 11],
        ] {
            let direct =
                bi.responsibility(&train, &rows, Estimator::SecondOrder, BiasEval::ChainRule);
            assert_eq!(scorer(&rows).to_bits(), direct.to_bits());
        }
    }

    #[test]
    fn hessian_ground_truth_matches_retrain_without() {
        let (train, test) = split(500, 23);
        let _ = test;
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        ModelFamily::fit(&mut model, &train);
        let backend: HessianBackend<LogisticRegression> =
            InfluenceBackend::build(model, &train, InfluenceConfig::default());
        let rows: Vec<u32> = (0..25).collect();
        let via_backend = backend.ground_truth_model(&train, &rows);
        let direct = retrain_without(backend.model(), &train, &rows).model;
        assert_eq!(via_backend.params(), direct.params());
        let many = backend.ground_truth_models(&train, std::slice::from_ref(&rows), 1);
        assert_eq!(many[0].params(), direct.params());
    }

    #[test]
    fn unlearning_scorer_sign_matches_scratch_retrain_on_strong_subsets() {
        let (train, test) = split(1000, 29);
        let mut forest = Forest::new(train.n_cols(), ForestConfig::default());
        ModelFamily::fit(&mut forest, &train);
        let backend = UnlearningBackend::build(forest, &train, InfluenceConfig::default());
        let metric = FairnessMetric::StatisticalParity;
        let precomp = backend.precompute(metric, &test);
        let base = precomp.base_hard;
        assert!(
            base > 0.0,
            "german data must show baseline bias, got {base}"
        );
        // A strong bias-driving subset: privileged positives.
        let rows: Vec<u32> = (0..train.n_rows() as u32)
            .filter(|&r| train.privileged[r as usize] && train.y[r as usize] == 1.0)
            .take(train.n_rows() / 10)
            .collect();
        let scorer = backend.scorer(
            &train,
            &test,
            metric,
            precomp,
            Estimator::FirstOrder,
            BiasEval::ReEvalSmooth,
        );
        let est = scorer(&rows);
        let oracle = backend.ground_truth_model(&train, &rows);
        let gt = -(gopher_fairness::bias(metric, &oracle, &test) - base) / base;
        assert_eq!(
            est.signum(),
            gt.signum(),
            "unlearning estimate {est} vs scratch-retrain ground truth {gt}"
        );
    }

    #[test]
    fn unlearning_update_removals_are_exact_and_additions_rebuild() {
        let (train, _) = split(500, 31);
        let mut forest = Forest::new(train.n_cols(), ForestConfig::default());
        ModelFamily::fit(&mut forest, &train);
        let mut backend =
            UnlearningBackend::build(forest.clone(), &train, InfluenceConfig::default());

        // Removal-only delta: exact unlearning, no fallback.
        let removed: Vec<usize> = vec![3, 10, 57, 200];
        let mut mask = vec![false; train.n_rows()];
        removed.iter().for_each(|&r| mask[r] = true);
        let new_train = train.remove_rows(&mask);
        let report = backend.update(&train, &new_train, &removed, &[], &[]);
        assert!(!report.fell_back());
        assert_eq!(backend.n_train(), new_train.n_rows());
        // The unlearned forest matches unlearn-then-remap applied directly.
        let mut reference = forest.unlearn(&train, &[3, 10, 57, 200]);
        reference.remap_after_removal(&[3, 10, 57, 200]);
        for r in 0..new_train.n_rows() {
            let a = backend.model().predict_proba(new_train.x.row(r));
            let b = reference.predict_proba(new_train.x.row(r));
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Any addition triggers the documented full rebuild.
        let added_x: Vec<f64> = vec![0.0; train.n_cols()];
        let added: Vec<(&[f64], f64)> = vec![(added_x.as_slice(), 1.0)];
        let report = backend.update(&new_train, &new_train, &[], &[], &added);
        assert!(report.full_rebuild);
        assert!(report.retrain.converged);
    }
}
