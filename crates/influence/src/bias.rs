//! Bias-change estimation: from parameter changes to fairness-metric changes.

use crate::engine::{Estimator, InfluenceEngine};
use gopher_data::Encoded;
use gopher_fairness::FairnessMetric;
use gopher_linalg::vecops;
use gopher_models::Differentiable;

/// How to turn an estimated parameter change into an estimated bias change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BiasEval {
    /// Linearize: `ΔF = ∇θF(θ*)ᵀ Δθ` (paper Eq. 11).
    ChainRule,
    /// Re-evaluate the smooth metric at `θ* + Δθ`.
    ReEvalSmooth,
    /// Re-evaluate the hard (thresholded) metric at `θ* + Δθ`.
    ReEvalHard,
}

/// The metric-specific state [`BiasInfluence`] precomputes: the smooth bias
/// gradient and the baseline biases.
///
/// Computing this is the only per-metric cost of building a query object, so
/// a session serving many queries against one engine caches one
/// `BiasPrecomp` per metric and rebuilds [`BiasInfluence`] handles for free
/// via [`BiasInfluence::from_precomp`].
#[derive(Debug, Clone)]
pub struct BiasPrecomp {
    /// `∇θ F(θ*, D_test)` of the smooth metric.
    pub grad_f: Vec<f64>,
    /// Baseline hard bias `F(θ*, D_test)`.
    pub base_hard: f64,
    /// Baseline smooth bias.
    pub base_smooth: f64,
}

impl BiasPrecomp {
    /// Computes the gradient and baselines for one metric/model/test-set
    /// triple.
    pub fn compute<M: Differentiable>(metric: FairnessMetric, model: &M, test: &Encoded) -> Self {
        Self {
            grad_f: gopher_fairness::bias_gradient(metric, model, test),
            base_hard: gopher_fairness::bias(metric, model, test),
            base_smooth: gopher_fairness::smooth_bias(metric, model, test),
        }
    }
}

/// Influence queries specialized to one fairness metric and test set.
///
/// Precomputes the bias gradient `∇θF(θ*, D_test)` and the baseline bias so
/// each query costs one parameter-change estimate plus a dot product (chain
/// rule) or one metric evaluation (re-eval modes).
pub struct BiasInfluence<'a, M: Differentiable> {
    engine: &'a InfluenceEngine<M>,
    metric: FairnessMetric,
    test: &'a Encoded,
    grad_f: Vec<f64>,
    base_hard: f64,
    base_smooth: f64,
}

impl<'a, M: Differentiable> BiasInfluence<'a, M> {
    /// Builds the query object, computing the precomputation inline.
    pub fn new(engine: &'a InfluenceEngine<M>, metric: FairnessMetric, test: &'a Encoded) -> Self {
        let precomp = BiasPrecomp::compute(metric, engine.model(), test);
        Self::from_precomp(engine, metric, test, precomp)
    }

    /// Builds the query object around an already-computed [`BiasPrecomp`],
    /// reusing one engine handle across many `BiasInfluence` instances
    /// without re-deriving the metric gradient. The caller is responsible
    /// for the precomp matching `(metric, engine.model(), test)`.
    pub fn from_precomp(
        engine: &'a InfluenceEngine<M>,
        metric: FairnessMetric,
        test: &'a Encoded,
        precomp: BiasPrecomp,
    ) -> Self {
        Self {
            engine,
            metric,
            test,
            grad_f: precomp.grad_f,
            base_hard: precomp.base_hard,
            base_smooth: precomp.base_smooth,
        }
    }

    /// The metric being tracked.
    pub fn metric(&self) -> FairnessMetric {
        self.metric
    }

    /// Baseline hard bias `F(θ*, D_test)`.
    pub fn base_bias(&self) -> f64 {
        self.base_hard
    }

    /// Baseline smooth bias.
    pub fn base_smooth_bias(&self) -> f64 {
        self.base_smooth
    }

    /// The precomputed `∇θ F(θ*, D_test)`.
    pub fn bias_grad(&self) -> &[f64] {
        &self.grad_f
    }

    /// Estimated bias change `ΔF ≈ F(θ̄_S) − F(θ*)` if the given training
    /// rows were removed.
    pub fn bias_change(
        &self,
        train: &Encoded,
        rows: &[u32],
        estimator: Estimator,
        eval: BiasEval,
    ) -> f64 {
        let delta = self.engine.param_change(train, rows, estimator);
        self.bias_change_from_delta(&delta, eval)
    }

    /// Bias change for an already-computed parameter change.
    pub fn bias_change_from_delta(&self, delta: &[f64], eval: BiasEval) -> f64 {
        match eval {
            BiasEval::ChainRule => vecops::dot(&self.grad_f, delta),
            BiasEval::ReEvalSmooth => {
                let shifted = self.shifted_model(delta);
                gopher_fairness::smooth_bias(self.metric, &shifted, self.test) - self.base_smooth
            }
            BiasEval::ReEvalHard => {
                let shifted = self.shifted_model(delta);
                gopher_fairness::bias(self.metric, &shifted, self.test) - self.base_hard
            }
        }
    }

    /// Causal responsibility `R_F(S) = (F(θ*) − F(θ̄_S)) / F(θ*)`
    /// (paper Definition 3.2), using the estimated bias change.
    ///
    /// Positive values mean removing `S` reduces bias. Returns 0 when the
    /// baseline bias is (numerically) zero — an unbiased model has no root
    /// causes to attribute.
    pub fn responsibility(
        &self,
        train: &Encoded,
        rows: &[u32],
        estimator: Estimator,
        eval: BiasEval,
    ) -> f64 {
        if self.base_hard.abs() < 1e-12 {
            return 0.0;
        }
        let delta_f = self.bias_change(train, rows, estimator, eval);
        -delta_f / self.base_hard
    }

    fn shifted_model(&self, delta: &[f64]) -> M {
        let mut shifted = self.engine.model().clone();
        for (t, d) in shifted.params_mut().iter_mut().zip(delta) {
            *t += d;
        }
        shifted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InfluenceConfig;
    use crate::retrain::retrain_without;
    use gopher_data::generators::german;
    use gopher_data::Encoder;
    use gopher_models::train::{fit_newton, NewtonConfig};
    use gopher_models::LogisticRegression;

    fn setup() -> (InfluenceEngine<LogisticRegression>, Encoded, Encoded) {
        let raw = german(900, 31);
        let mut rng = gopher_prng_rng();
        let (train_raw, test_raw) = raw.train_test_split(0.3, &mut rng);
        let enc = Encoder::fit(&train_raw);
        let train = enc.transform(&train_raw);
        let test = enc.transform(&test_raw);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        let engine = InfluenceEngine::new(model, &train, InfluenceConfig::default());
        (engine, train, test)
    }

    fn gopher_prng_rng() -> gopher_prng::Rng {
        gopher_prng::Rng::new(77)
    }

    #[test]
    fn chain_rule_tracks_ground_truth_bias_change() {
        let (engine, train, test) = setup();
        let bi = BiasInfluence::new(&engine, FairnessMetric::StatisticalParity, &test);
        assert!(bi.base_bias() > 0.0, "baseline bias {}", bi.base_bias());

        // Remove the privileged-and-positive rows most responsible for bias:
        // pick a 5% block of privileged positive examples.
        let rows: Vec<u32> = (0..train.n_rows() as u32)
            .filter(|&r| train.privileged[r as usize] && train.y[r as usize] == 1.0)
            .take(train.n_rows() / 20)
            .collect();
        assert!(!rows.is_empty());

        let outcome = retrain_without(engine.model(), &train, &rows);
        let true_change =
            gopher_fairness::smooth_bias(FairnessMetric::StatisticalParity, &outcome.model, &test)
                - bi.base_smooth_bias();

        for est in [
            Estimator::FirstOrder,
            Estimator::SecondOrder,
            Estimator::NewtonStep,
        ] {
            let est_change = bi.bias_change(&train, &rows, est, BiasEval::ChainRule);
            assert_eq!(
                est_change.signum(),
                true_change.signum(),
                "{}: estimated {est_change} vs true {true_change}",
                est.label()
            );
            assert!(
                (est_change - true_change).abs() < 0.6 * true_change.abs() + 0.01,
                "{}: estimated {est_change} vs true {true_change}",
                est.label()
            );
        }
    }

    #[test]
    fn reeval_smooth_is_at_least_as_accurate_as_chain_rule_for_newton() {
        let (engine, train, test) = setup();
        let bi = BiasInfluence::new(&engine, FairnessMetric::StatisticalParity, &test);
        let rows: Vec<u32> = (0..(train.n_rows() / 5) as u32).collect(); // 20%
        let outcome = retrain_without(engine.model(), &train, &rows);
        let true_change =
            gopher_fairness::smooth_bias(FairnessMetric::StatisticalParity, &outcome.model, &test)
                - bi.base_smooth_bias();
        let delta = engine.param_change(&train, &rows, Estimator::NewtonStep);
        let chain = bi.bias_change_from_delta(&delta, BiasEval::ChainRule);
        let reeval = bi.bias_change_from_delta(&delta, BiasEval::ReEvalSmooth);
        let chain_err = (chain - true_change).abs();
        let reeval_err = (reeval - true_change).abs();
        assert!(
            reeval_err <= chain_err + 1e-3,
            "re-eval err {reeval_err} vs chain err {chain_err}"
        );
    }

    #[test]
    fn responsibility_sign_convention() {
        let (engine, train, test) = setup();
        let bi = BiasInfluence::new(&engine, FairnessMetric::StatisticalParity, &test);
        // Privileged positives push bias up; removing them should have
        // positive responsibility.
        let up_rows: Vec<u32> = (0..train.n_rows() as u32)
            .filter(|&r| train.privileged[r as usize] && train.y[r as usize] == 1.0)
            .take(30)
            .collect();
        let r = bi.responsibility(
            &train,
            &up_rows,
            Estimator::SecondOrder,
            BiasEval::ChainRule,
        );
        assert!(r > 0.0, "responsibility of bias-increasing rows {r}");
        // Protected positives pull bias down; removing them should backfire.
        let down_rows: Vec<u32> = (0..train.n_rows() as u32)
            .filter(|&r| !train.privileged[r as usize] && train.y[r as usize] == 1.0)
            .take(30)
            .collect();
        let r2 = bi.responsibility(
            &train,
            &down_rows,
            Estimator::SecondOrder,
            BiasEval::ChainRule,
        );
        assert!(r2 < 0.0, "responsibility of bias-reducing rows {r2}");
    }

    #[test]
    fn zero_baseline_bias_yields_zero_responsibility() {
        let (engine, train, test) = setup();
        // Degenerate test set: the same point once per group, so every rate
        // is identical and the hard bias is exactly 0.
        let mut degenerate = test.select_rows(&[0, 0]);
        degenerate.privileged[0] = true;
        degenerate.privileged[1] = false;
        degenerate.y[0] = 1.0;
        degenerate.y[1] = 1.0;
        let bi = BiasInfluence::new(&engine, FairnessMetric::StatisticalParity, &degenerate);
        assert_eq!(bi.base_bias(), 0.0);
        let rows: Vec<u32> = (0..10).collect();
        assert_eq!(
            bi.responsibility(&train, &rows, Estimator::FirstOrder, BiasEval::ChainRule),
            0.0
        );
    }
}
