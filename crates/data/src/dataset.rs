//! Column-oriented dataset with typed columns, labels, and group membership.

use crate::schema::{FeatureKind, PrivilegedIf, ProtectedSpec, Schema};
use gopher_prng::Rng;

/// A single column of feature values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Level indices into the feature's declared levels.
    Categorical(Vec<u32>),
    /// Raw numeric values.
    Numeric(Vec<f64>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Self::Categorical(v) => v.len(),
            Self::Numeric(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`.
    ///
    /// Convenient for one-off access, but it re-branches on the column kind
    /// per call — loops over rows should hoist the branch once via
    /// [`Self::as_categorical`] / [`Self::as_numeric`] and index the typed
    /// slice directly.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Self::Categorical(v) => Value::Level(v[row]),
            Self::Numeric(v) => Value::Number(v[row]),
        }
    }

    /// The level indices of a categorical column as a typed slice.
    ///
    /// # Panics
    /// If the column is numeric (callers dispatch on the schema kind first;
    /// a mismatch is a programming error, as in [`Value::as_level`]).
    pub fn as_categorical(&self) -> &[u32] {
        match self {
            Self::Categorical(v) => v,
            Self::Numeric(_) => panic!("column is numeric, not categorical"),
        }
    }

    /// The raw values of a numeric column as a typed slice.
    ///
    /// # Panics
    /// If the column is categorical.
    pub fn as_numeric(&self) -> &[f64] {
        match self {
            Self::Numeric(v) => v,
            Self::Categorical(_) => panic!("column is categorical, not numeric"),
        }
    }
}

/// A single cell value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Categorical level index.
    Level(u32),
    /// Numeric value.
    Number(f64),
}

impl Value {
    /// The numeric payload, panicking for categorical values.
    pub fn as_number(&self) -> f64 {
        match self {
            Self::Number(x) => *x,
            Self::Level(_) => panic!("value is categorical, not numeric"),
        }
    }

    /// The level payload, panicking for numeric values.
    pub fn as_level(&self) -> u32 {
        match self {
            Self::Level(l) => *l,
            Self::Number(_) => panic!("value is numeric, not categorical"),
        }
    }
}

/// A binary-labeled tabular dataset.
///
/// Invariants (checked at construction):
/// * every column matches its schema kind and has the same length;
/// * categorical values are valid level indices;
/// * labels are 0/1 and have the same length as the columns;
/// * the protected spec refers to an existing feature of a compatible kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    labels: Vec<u8>,
    protected: ProtectedSpec,
}

impl Dataset {
    /// Builds a dataset, validating all invariants.
    ///
    /// # Panics
    /// If any invariant is violated (these are programming errors in the
    /// generators or loaders, not runtime conditions).
    pub fn new(
        schema: Schema,
        columns: Vec<Column>,
        labels: Vec<u8>,
        protected: ProtectedSpec,
    ) -> Self {
        assert_eq!(
            columns.len(),
            schema.n_features(),
            "dataset: column count does not match schema"
        );
        let n = labels.len();
        for (idx, (col, feat)) in columns.iter().zip(schema.features()).enumerate() {
            assert_eq!(col.len(), n, "dataset: column {idx} has wrong length");
            match (&feat.kind, col) {
                (FeatureKind::Categorical { levels }, Column::Categorical(vals)) => {
                    let k = levels.len() as u32;
                    for &v in vals {
                        assert!(v < k, "dataset: column {idx} level {v} out of range");
                    }
                }
                (FeatureKind::Numeric, Column::Numeric(vals)) => {
                    for &v in vals {
                        assert!(v.is_finite(), "dataset: column {idx} has non-finite value");
                    }
                }
                _ => panic!("dataset: column {idx} kind does not match schema"),
            }
        }
        for &y in &labels {
            assert!(y <= 1, "dataset: labels must be 0/1");
        }
        assert!(
            protected.feature < schema.n_features(),
            "dataset: protected feature out of range"
        );
        match (
            &protected.privileged,
            &schema.feature(protected.feature).kind,
        ) {
            (PrivilegedIf::Level(l), FeatureKind::Categorical { levels }) => {
                assert!(
                    (*l as usize) < levels.len(),
                    "dataset: privileged level out of range"
                );
            }
            (PrivilegedIf::AtLeast(_), FeatureKind::Numeric) => {}
            _ => panic!("dataset: protected spec kind does not match feature kind"),
        }
        Self {
            schema,
            columns,
            labels,
            protected,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The protected-group specification.
    pub fn protected(&self) -> &ProtectedSpec {
        &self.protected
    }

    /// The column for feature `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The 0/1 labels (1 = favorable outcome).
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// The value of feature `feature` in row `row`.
    pub fn value(&self, row: usize, feature: usize) -> Value {
        self.columns[feature].value(row)
    }

    /// Whether row `row` belongs to the privileged group.
    pub fn is_privileged(&self, row: usize) -> bool {
        match (
            &self.protected.privileged,
            &self.columns[self.protected.feature],
        ) {
            (PrivilegedIf::Level(l), Column::Categorical(vals)) => vals[row] == *l,
            (PrivilegedIf::AtLeast(c), Column::Numeric(vals)) => vals[row] >= *c,
            _ => unreachable!("validated at construction"),
        }
    }

    /// Privileged-group membership for every row.
    pub fn privileged_mask(&self) -> Vec<bool> {
        (0..self.n_rows()).map(|r| self.is_privileged(r)).collect()
    }

    /// Base rate of the favorable label.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().map(|&y| y as usize).sum::<usize>() as f64 / self.labels.len() as f64
    }

    /// Returns a new dataset containing only the given rows (in the given
    /// order; duplicates allowed).
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|col| match col {
                Column::Categorical(v) => Column::Categorical(rows.iter().map(|&r| v[r]).collect()),
                Column::Numeric(v) => Column::Numeric(rows.iter().map(|&r| v[r]).collect()),
            })
            .collect();
        let labels = rows.iter().map(|&r| self.labels[r]).collect();
        Dataset {
            schema: self.schema.clone(),
            columns,
            labels,
            protected: self.protected.clone(),
        }
    }

    /// Returns a new dataset with the rows in `remove` (given as a boolean
    /// mask) dropped. `remove.len()` must equal `n_rows()`.
    pub fn remove_rows(&self, remove: &[bool]) -> Dataset {
        assert_eq!(
            remove.len(),
            self.n_rows(),
            "remove_rows: mask length mismatch"
        );
        let keep: Vec<usize> = (0..self.n_rows()).filter(|&r| !remove[r]).collect();
        self.select_rows(&keep)
    }

    /// One-pass delta patch: drops the rows whose mask entry is true and
    /// appends `added`'s rows, equivalent to
    /// `self.remove_rows(remove).concat(added)` without the intermediate
    /// copy.
    ///
    /// # Panics
    /// If the mask length, schemas, or protected specs mismatch.
    pub fn patched(&self, remove: &[bool], added: &Dataset) -> Dataset {
        assert_eq!(remove.len(), self.n_rows(), "patched: mask length mismatch");
        assert_eq!(self.schema, added.schema, "patched: schema mismatch");
        assert_eq!(
            self.protected, added.protected,
            "patched: protected mismatch"
        );
        let n_new = self.n_rows() - remove.iter().filter(|&&r| r).count() + added.n_rows();
        let columns = self
            .columns
            .iter()
            .zip(&added.columns)
            .map(|(col, add)| match (col, add) {
                (Column::Categorical(v), Column::Categorical(a)) => {
                    let mut out = Vec::with_capacity(n_new);
                    out.extend(
                        v.iter()
                            .zip(remove)
                            .filter(|(_, &gone)| !gone)
                            .map(|(&x, _)| x),
                    );
                    out.extend_from_slice(a);
                    Column::Categorical(out)
                }
                (Column::Numeric(v), Column::Numeric(a)) => {
                    let mut out = Vec::with_capacity(n_new);
                    out.extend(
                        v.iter()
                            .zip(remove)
                            .filter(|(_, &gone)| !gone)
                            .map(|(&x, _)| x),
                    );
                    out.extend_from_slice(a);
                    Column::Numeric(out)
                }
                _ => unreachable!("schemas match"),
            })
            .collect();
        let mut labels = Vec::with_capacity(n_new);
        labels.extend(
            self.labels
                .iter()
                .zip(remove)
                .filter(|(_, &gone)| !gone)
                .map(|(&y, _)| y),
        );
        labels.extend_from_slice(&added.labels);
        Dataset {
            schema: self.schema.clone(),
            columns,
            labels,
            protected: self.protected.clone(),
        }
    }

    /// Splits into `(train, test)` with `test_fraction` of rows (rounded
    /// down) going to the test set, after a seeded shuffle.
    ///
    /// # Panics
    /// If `test_fraction` is not in `(0, 1)`.
    pub fn train_test_split(&self, test_fraction: f64, rng: &mut Rng) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "train_test_split: fraction must be in (0,1)"
        );
        let n = self.n_rows();
        let perm = rng.permutation(n);
        let n_test = ((n as f64) * test_fraction) as usize;
        let (test_rows, train_rows) = perm.split_at(n_test);
        (self.select_rows(train_rows), self.select_rows(test_rows))
    }

    /// Concatenates two datasets with identical schemas and protected specs.
    ///
    /// # Panics
    /// If schemas or protected specs differ.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.schema, other.schema, "concat: schema mismatch");
        assert_eq!(
            self.protected, other.protected,
            "concat: protected mismatch"
        );
        let columns = self
            .columns
            .iter()
            .zip(&other.columns)
            .map(|(a, b)| match (a, b) {
                (Column::Categorical(x), Column::Categorical(y)) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Column::Categorical(v)
                }
                (Column::Numeric(x), Column::Numeric(y)) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Column::Numeric(v)
                }
                _ => unreachable!("schemas match"),
            })
            .collect();
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Dataset {
            schema: self.schema.clone(),
            columns,
            labels,
            protected: self.protected.clone(),
        }
    }

    /// Replicates the dataset `factor` times (used by the paper's Figure 5
    /// scalability study, which scales German Credit ×50 … ×1600).
    ///
    /// # Panics
    /// If `factor == 0`.
    pub fn replicate(&self, factor: usize) -> Dataset {
        assert!(factor > 0, "replicate: factor must be positive");
        let n = self.n_rows();
        let rows: Vec<usize> = (0..factor).flat_map(|_| 0..n).collect();
        self.select_rows(&rows)
    }

    /// Renders row `row` as `name=value` pairs (for reports and examples).
    pub fn describe_row(&self, row: usize) -> String {
        let mut parts = Vec::with_capacity(self.n_features() + 1);
        for (idx, feat) in self.schema.features().iter().enumerate() {
            let rendered = match self.value(row, idx) {
                Value::Level(l) => self.schema.level_name(idx, l).to_string(),
                Value::Number(x) => format!("{x:.2}"),
            };
            parts.push(format!("{}={rendered}", feat.name));
        }
        parts.push(format!("{}={}", self.schema.label_name, self.labels[row]));
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Feature;

    fn toy() -> Dataset {
        let schema = Schema::new(
            vec![
                Feature::categorical("color", ["red", "blue"]),
                Feature::numeric("age"),
            ],
            "label",
        );
        Dataset::new(
            schema,
            vec![
                Column::Categorical(vec![0, 1, 0, 1]),
                Column::Numeric(vec![20.0, 30.0, 40.0, 50.0]),
            ],
            vec![0, 1, 1, 0],
            ProtectedSpec {
                feature: 1,
                privileged: PrivilegedIf::AtLeast(35.0),
            },
        )
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.value(1, 0), Value::Level(1));
        assert_eq!(d.value(2, 1), Value::Number(40.0));
        assert_eq!(d.positive_rate(), 0.5);
    }

    #[test]
    fn typed_accessors_return_slices() {
        let d = toy();
        assert_eq!(d.column(0).as_categorical(), &[0, 1, 0, 1]);
        assert_eq!(d.column(1).as_numeric(), &[20.0, 30.0, 40.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "column is numeric")]
    fn as_categorical_rejects_numeric_columns() {
        let d = toy();
        let _ = d.column(1).as_categorical();
    }

    #[test]
    #[should_panic(expected = "column is categorical")]
    fn as_numeric_rejects_categorical_columns() {
        let d = toy();
        let _ = d.column(0).as_numeric();
    }

    #[test]
    fn privileged_mask_uses_threshold() {
        let d = toy();
        assert_eq!(d.privileged_mask(), vec![false, false, true, true]);
    }

    #[test]
    fn privileged_mask_categorical() {
        let schema = Schema::new(vec![Feature::categorical("g", ["f", "m"])], "y");
        let d = Dataset::new(
            schema,
            vec![Column::Categorical(vec![0, 1, 1])],
            vec![0, 1, 0],
            ProtectedSpec {
                feature: 0,
                privileged: PrivilegedIf::Level(1),
            },
        );
        assert_eq!(d.privileged_mask(), vec![false, true, true]);
    }

    #[test]
    fn select_and_remove_rows() {
        let d = toy();
        let s = d.select_rows(&[3, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.value(0, 1), Value::Number(50.0));
        assert_eq!(s.labels(), &[0, 0]);

        let r = d.remove_rows(&[true, false, false, true]);
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.value(0, 1), Value::Number(30.0));
        assert_eq!(r.labels(), &[1, 1]);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy().replicate(25); // 100 rows
        let mut rng = Rng::new(0);
        let (train, test) = d.train_test_split(0.2, &mut rng);
        assert_eq!(test.n_rows(), 20);
        assert_eq!(train.n_rows(), 80);
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = d.concat(&d);
        assert_eq!(c.n_rows(), 8);
        assert_eq!(c.value(5, 1), d.value(1, 1));
    }

    #[test]
    fn replicate_multiplies_rows() {
        let d = toy();
        let r = d.replicate(3);
        assert_eq!(r.n_rows(), 12);
        assert_eq!(r.value(9, 1), d.value(1, 1));
    }

    #[test]
    fn describe_row_renders_names() {
        let d = toy();
        let s = d.describe_row(0);
        assert!(s.contains("color=red"), "{s}");
        assert!(s.contains("age=20.00"), "{s}");
        assert!(s.contains("label=0"), "{s}");
    }

    #[test]
    #[should_panic(expected = "level 5 out of range")]
    fn rejects_invalid_level() {
        let schema = Schema::new(vec![Feature::categorical("c", ["a", "b"])], "y");
        Dataset::new(
            schema,
            vec![Column::Categorical(vec![5])],
            vec![0],
            ProtectedSpec {
                feature: 0,
                privileged: PrivilegedIf::Level(0),
            },
        );
    }

    #[test]
    #[should_panic(expected = "labels must be 0/1")]
    fn rejects_non_binary_labels() {
        let schema = Schema::new(vec![Feature::numeric("x")], "y");
        Dataset::new(
            schema,
            vec![Column::Numeric(vec![1.0])],
            vec![2],
            ProtectedSpec {
                feature: 0,
                privileged: PrivilegedIf::AtLeast(0.0),
            },
        );
    }

    #[test]
    #[should_panic(expected = "protected spec kind does not match")]
    fn rejects_mismatched_protected_kind() {
        let schema = Schema::new(vec![Feature::numeric("x")], "y");
        Dataset::new(
            schema,
            vec![Column::Numeric(vec![1.0])],
            vec![0],
            ProtectedSpec {
                feature: 0,
                privileged: PrivilegedIf::Level(0),
            },
        );
    }
}
