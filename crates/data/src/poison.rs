//! Anchoring-style data poisoning against fairness (paper §6.7).
//!
//! Following Mehrabi et al., "Exacerbating Algorithmic Bias through Fairness
//! Attacks" (AAAI 2021), the *non-random anchoring attack* picks **anchor**
//! points from the clean data and injects poisoned copies placed close to the
//! anchors (so they evade distance-based outlier detection) with labels
//! chosen to widen the demographic gap:
//!
//! * near privileged-group anchors with a favorable label, inject privileged
//!   points labeled favorable (reinforcing `privileged → positive`);
//! * near protected-group anchors with an unfavorable label, inject protected
//!   points labeled unfavorable (reinforcing `protected → negative`).
//!
//! "Non-random" means anchors are chosen to be *popular* — points with many
//! same-group, same-label neighbours — so the poisons sit inside dense
//! regions of the clean distribution. This is exactly why
//! `LocalOutlierFactor`-style detectors fail on them (§6.7), and what the
//! influence-based detector in `gopher-core` is able to find.

use crate::dataset::{Column, Dataset};
use crate::schema::FeatureKind;
use gopher_prng::Rng;

/// Configuration of the anchoring attack.
#[derive(Debug, Clone)]
pub struct AnchoringAttack {
    /// Fraction of poisoned points to inject, relative to the clean size
    /// (e.g. 0.05 injects `0.05 * n` points).
    pub poison_fraction: f64,
    /// Extra jitter applied on top of donor-sampled numeric features
    /// (as a multiple of the column's standard deviation).
    pub numeric_jitter: f64,
    /// Probability of resampling each categorical feature of a poisoned copy
    /// to a random level (small, to stay close to the anchor).
    pub categorical_flip_prob: f64,
    /// Number of candidate anchors scored per anchor slot ("popularity"
    /// sampling — the *non-random* part of the attack).
    pub anchor_candidates: usize,
    /// Number of distinct anchors per attack direction. The non-random
    /// anchoring attack of Mehrabi et al. uses very few anchors, so the
    /// poisons form tight clumps inside dense regions of the clean data.
    pub anchors_per_direction: usize,
}

impl Default for AnchoringAttack {
    fn default() -> Self {
        Self {
            poison_fraction: 0.05,
            numeric_jitter: 0.1,
            categorical_flip_prob: 0.0,
            anchor_candidates: 8,
            anchors_per_direction: 1,
        }
    }
}

/// The result of an attack: the contaminated dataset plus bookkeeping.
#[derive(Debug, Clone)]
pub struct PoisonedDataset {
    /// Clean rows followed by the injected rows.
    pub data: Dataset,
    /// Ground-truth mask over `data` rows: true = injected poison.
    pub is_poison: Vec<bool>,
    /// Number of injected points.
    pub n_poison: usize,
}

impl AnchoringAttack {
    /// Runs the attack on `clean`, returning the contaminated dataset.
    ///
    /// # Panics
    /// If `poison_fraction` is not in `(0, 1]` or the dataset is empty.
    pub fn run(&self, clean: &Dataset, rng: &mut Rng) -> PoisonedDataset {
        assert!(
            self.poison_fraction > 0.0 && self.poison_fraction <= 1.0,
            "poison_fraction must be in (0, 1]"
        );
        let n = clean.n_rows();
        assert!(n > 0, "cannot poison an empty dataset");
        let n_poison = ((n as f64) * self.poison_fraction).ceil() as usize;

        let privileged = clean.privileged_mask();
        // Target pools: privileged-positive and protected-negative rows.
        let priv_pos: Vec<usize> = (0..n)
            .filter(|&r| privileged[r] && clean.labels()[r] == 1)
            .collect();
        let prot_neg: Vec<usize> = (0..n)
            .filter(|&r| !privileged[r] && clean.labels()[r] == 0)
            .collect();

        // Numeric column standard deviations, for jitter scaling.
        let stds: Vec<f64> = (0..clean.n_features())
            .map(|f| match clean.column(f) {
                Column::Numeric(v) => gopher_linalg::vecops::variance(v).sqrt().max(1e-9),
                Column::Categorical(_) => 0.0,
            })
            .collect();

        // Popularity score of a row = how many rows share its label and
        // group; used to prefer dense anchors among sampled candidates.
        let popularity = |rows: &[usize], rng: &mut Rng| -> usize {
            let mut best = rows[rng.range(0, rows.len())];
            let mut best_score = -1.0f64;
            for _ in 0..self.anchor_candidates {
                let cand = rows[rng.range(0, rows.len())];
                // Cheap density proxy: similarity of the candidate to a few
                // random same-pool rows (categorical agreement count).
                let mut score = 0.0;
                for _ in 0..4 {
                    let other = rows[rng.range(0, rows.len())];
                    for f in 0..clean.n_features() {
                        if let (Column::Categorical(col), FeatureKind::Categorical { .. }) =
                            (clean.column(f), &clean.schema().feature(f).kind)
                        {
                            if col[cand] == col[other] {
                                score += 1.0;
                            }
                        }
                    }
                }
                if score > best_score {
                    best_score = score;
                    best = cand;
                }
            }
            best
        };

        // Pick the (few) anchors once per direction: the attack's stealth
        // comes from stacking many poisons near the same popular points.
        let k = self.anchors_per_direction.max(1);
        let priv_anchors: Vec<usize> = (0..k)
            .filter(|_| !priv_pos.is_empty())
            .map(|_| popularity(&priv_pos, rng))
            .collect();
        let prot_anchors: Vec<usize> = (0..k)
            .filter(|_| !prot_neg.is_empty())
            .map(|_| popularity(&prot_neg, rng))
            .collect();

        // Build poisoned rows as perturbed copies of anchors.
        let mut new_cols: Vec<Column> = (0..clean.n_features())
            .map(|f| match clean.column(f) {
                Column::Numeric(_) => Column::Numeric(Vec::with_capacity(n_poison)),
                Column::Categorical(_) => Column::Categorical(Vec::with_capacity(n_poison)),
            })
            .collect();
        let mut new_labels = Vec::with_capacity(n_poison);

        for i in 0..n_poison {
            // Alternate between the two attack directions (skip one if its
            // pool is empty).
            let (anchors, pool, label) =
                if (i % 2 == 0 && !priv_anchors.is_empty()) || prot_anchors.is_empty() {
                    (&priv_anchors, &priv_pos, 1u8)
                } else {
                    (&prot_anchors, &prot_neg, 0u8)
                };
            let anchor = anchors[(i / 2) % anchors.len()];
            // Numeric coordinates are borrowed from a random *donor* of the
            // same pool (plus a small jitter): the poison's numeric profile
            // is statistically indistinguishable from clean same-group data,
            // which is exactly why distance/density outlier detectors miss
            // it (§6.7). The anchor contributes the categorical signature.
            let donor = pool[rng.range(0, pool.len())];
            for f in 0..clean.n_features() {
                // Never perturb the sensitive feature: the poison must stay
                // in the targeted group (for numeric sensitive features even
                // a small jitter could cross the group threshold).
                let is_sensitive = f == clean.protected().feature;
                match (clean.column(f), &mut new_cols[f]) {
                    (Column::Numeric(src), Column::Numeric(dst)) => {
                        if is_sensitive {
                            dst.push(src[anchor]);
                        } else {
                            let jitter = rng.normal_with(0.0, self.numeric_jitter * stds[f]);
                            dst.push(src[donor] + jitter);
                        }
                    }
                    (Column::Categorical(src), Column::Categorical(dst)) => {
                        let n_levels = clean.schema().feature(f).kind.n_levels().expect("cat");
                        if !is_sensitive && rng.bernoulli(self.categorical_flip_prob) {
                            dst.push(rng.below(n_levels as u64) as u32);
                        } else {
                            dst.push(src[anchor]);
                        }
                    }
                    _ => unreachable!("column kinds are stable"),
                }
            }
            new_labels.push(label);
        }

        let injected = Dataset::new(
            clean.schema().clone(),
            new_cols,
            new_labels,
            clean.protected().clone(),
        );
        let data = clean.concat(&injected);
        let mut is_poison = vec![false; n];
        is_poison.extend(std::iter::repeat_n(true, n_poison));
        PoisonedDataset {
            data,
            is_poison,
            n_poison,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::german;

    #[test]
    fn injects_requested_fraction() {
        let clean = german(1000, 1);
        let mut rng = Rng::new(99);
        let attack = AnchoringAttack {
            poison_fraction: 0.08,
            ..Default::default()
        };
        let poisoned = attack.run(&clean, &mut rng);
        assert_eq!(poisoned.n_poison, 80);
        assert_eq!(poisoned.data.n_rows(), 1080);
        assert_eq!(poisoned.is_poison.iter().filter(|&&p| p).count(), 80);
        // Clean prefix is untouched.
        assert!(!poisoned.is_poison[..1000].iter().any(|&p| p));
    }

    #[test]
    fn poisons_widen_the_group_gap() {
        let clean = german(2000, 2);
        let mut rng = Rng::new(100);
        let attack = AnchoringAttack {
            poison_fraction: 0.10,
            ..Default::default()
        };
        let poisoned = attack.run(&clean, &mut rng);
        // Gap = P(y=1 | privileged) − P(y=1 | protected), before and after.
        let gap = |d: &Dataset| {
            let mask = d.privileged_mask();
            let (mut pp, mut pn, mut up, mut un) = (0f64, 0f64, 0f64, 0f64);
            for (r, &is_priv) in mask.iter().enumerate() {
                let y = d.labels()[r] as f64;
                if is_priv {
                    pp += y;
                    pn += 1.0;
                } else {
                    up += y;
                    un += 1.0;
                }
            }
            pp / pn - up / un
        };
        assert!(
            gap(&poisoned.data) > gap(&clean),
            "attack should widen the label gap: {} vs {}",
            gap(&poisoned.data),
            gap(&clean)
        );
    }

    #[test]
    fn poison_labels_follow_attack_direction() {
        let clean = german(500, 3);
        let mut rng = Rng::new(101);
        let poisoned = AnchoringAttack::default().run(&clean, &mut rng);
        for r in 500..poisoned.data.n_rows() {
            let priv_ = poisoned.data.is_privileged(r);
            let y = poisoned.data.labels()[r];
            assert!(
                (priv_ && y == 1) || (!priv_ && y == 0),
                "poison row {r} has wrong direction (priv={priv_}, y={y})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "poison_fraction must be in (0, 1]")]
    fn rejects_bad_fraction() {
        let clean = german(100, 4);
        let mut rng = Rng::new(102);
        let attack = AnchoringAttack {
            poison_fraction: 0.0,
            ..Default::default()
        };
        let _ = attack.run(&clean, &mut rng);
    }
}
