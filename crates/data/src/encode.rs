//! One-hot + z-score encoding of datasets into design matrices.
//!
//! The encoder is *fit* on training data (collecting per-feature means,
//! standard deviations, and observed numeric ranges) and then *transforms*
//! any dataset with the same schema. The recorded [`EncodingLayout`] is what
//! lets update-based explanations (paper §5) project perturbed points back
//! into the valid input domain (Eq. 19) and decode them for display:
//!
//! * numeric features become one standardized column, with the training
//!   min/max retained as box constraints;
//! * categorical features become a full one-hot block, whose nearest valid
//!   point under L2 is "argmax coordinate gets 1, rest get 0".

use crate::dataset::{Dataset, Value};
use crate::schema::FeatureKind;
use gopher_linalg::Matrix;

/// How one schema feature maps into encoded columns.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedGroup {
    /// A standardized numeric column.
    Numeric {
        /// Schema feature index.
        feature: usize,
        /// Encoded column index.
        col: usize,
        /// Training mean (for standardization).
        mean: f64,
        /// Training standard deviation (>= `MIN_STD`).
        std: f64,
        /// Smallest standardized value observed in training data.
        lo: f64,
        /// Largest standardized value observed in training data.
        hi: f64,
    },
    /// A one-hot block of `n_levels` consecutive columns.
    OneHot {
        /// Schema feature index.
        feature: usize,
        /// First encoded column of the block.
        first_col: usize,
        /// Number of levels (= number of columns in the block).
        n_levels: usize,
    },
}

/// Complete description of the encoded feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingLayout {
    groups: Vec<EncodedGroup>,
    n_cols: usize,
}

impl EncodingLayout {
    /// Encoded feature groups in schema order.
    pub fn groups(&self) -> &[EncodedGroup] {
        &self.groups
    }

    /// Total number of encoded columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The group that owns encoded column `col`.
    pub fn group_of_col(&self, col: usize) -> &EncodedGroup {
        self.groups
            .iter()
            .find(|g| match g {
                EncodedGroup::Numeric { col: c, .. } => *c == col,
                EncodedGroup::OneHot {
                    first_col,
                    n_levels,
                    ..
                } => col >= *first_col && col < first_col + n_levels,
            })
            .expect("column within layout")
    }
}

/// Minimum standard deviation used for standardization, to avoid dividing by
/// zero on constant training columns.
const MIN_STD: f64 = 1e-9;

/// A fitted encoder.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoder {
    layout: EncodingLayout,
    n_features: usize,
}

/// An encoded dataset: the design matrix plus labels and group membership.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// `n × p` design matrix (no intercept column; models add their own).
    pub x: Matrix,
    /// Labels as 0.0 / 1.0.
    pub y: Vec<f64>,
    /// Privileged-group membership per row.
    pub privileged: Vec<bool>,
}

impl Encoded {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.x.rows()
    }

    /// Number of encoded columns.
    pub fn n_cols(&self) -> usize {
        self.x.cols()
    }

    /// Returns a copy with only the selected rows.
    pub fn select_rows(&self, rows: &[usize]) -> Encoded {
        let p = self.n_cols();
        let mut x = Matrix::zeros(rows.len(), p);
        for (new_r, &r) in rows.iter().enumerate() {
            x.row_mut(new_r).copy_from_slice(self.x.row(r));
        }
        Encoded {
            x,
            y: rows.iter().map(|&r| self.y[r]).collect(),
            privileged: rows.iter().map(|&r| self.privileged[r]).collect(),
        }
    }

    /// Returns a copy without the rows whose mask entry is true.
    pub fn remove_rows(&self, remove: &[bool]) -> Encoded {
        assert_eq!(
            remove.len(),
            self.n_rows(),
            "remove_rows: mask length mismatch"
        );
        let keep: Vec<usize> = (0..self.n_rows()).filter(|&r| !remove[r]).collect();
        self.select_rows(&keep)
    }

    /// One-pass delta patch: drops the rows whose mask entry is true and
    /// appends `added`'s rows. Because encoding is row-wise under a frozen
    /// layout, this is bit-identical to re-encoding the patched raw dataset
    /// — without touching the unchanged rows' features again.
    ///
    /// # Panics
    /// If the mask length or column counts mismatch.
    pub fn patched(&self, remove: &[bool], added: &Encoded) -> Encoded {
        assert_eq!(remove.len(), self.n_rows(), "patched: mask length mismatch");
        assert_eq!(self.n_cols(), added.n_cols(), "patched: column mismatch");
        let p = self.n_cols();
        let kept = remove.iter().filter(|&&r| !r).count();
        let n_new = kept + added.n_rows();
        let mut data = Vec::with_capacity(n_new * p);
        for (r, &gone) in remove.iter().enumerate() {
            if !gone {
                data.extend_from_slice(self.x.row(r));
            }
        }
        data.extend_from_slice(added.x.as_slice());
        let mut y = Vec::with_capacity(n_new);
        let mut privileged = Vec::with_capacity(n_new);
        for (r, &gone) in remove.iter().enumerate() {
            if !gone {
                y.push(self.y[r]);
                privileged.push(self.privileged[r]);
            }
        }
        y.extend_from_slice(&added.y);
        privileged.extend_from_slice(&added.privileged);
        Encoded {
            x: Matrix::from_vec(n_new, p, data),
            y,
            privileged,
        }
    }
}

impl Encoder {
    /// Fits the encoder on training data: records one-hot blocks for
    /// categorical features and mean/std/min/max for numeric features.
    pub fn fit(train: &Dataset) -> Encoder {
        let mut groups = Vec::with_capacity(train.n_features());
        let mut next_col = 0usize;
        for (f_idx, feat) in train.schema().features().iter().enumerate() {
            match &feat.kind {
                FeatureKind::Categorical { levels } => {
                    groups.push(EncodedGroup::OneHot {
                        feature: f_idx,
                        first_col: next_col,
                        n_levels: levels.len(),
                    });
                    next_col += levels.len();
                }
                FeatureKind::Numeric => {
                    let vals = train.column(f_idx).as_numeric();
                    let mean = gopher_linalg::vecops::mean(vals);
                    let std = gopher_linalg::vecops::variance(vals).sqrt().max(MIN_STD);
                    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                    for &v in vals {
                        let z = (v - mean) / std;
                        lo = lo.min(z);
                        hi = hi.max(z);
                    }
                    if !lo.is_finite() {
                        // Empty training column: degenerate but harmless.
                        lo = 0.0;
                        hi = 0.0;
                    }
                    groups.push(EncodedGroup::Numeric {
                        feature: f_idx,
                        col: next_col,
                        mean,
                        std,
                        lo,
                        hi,
                    });
                    next_col += 1;
                }
            }
        }
        Encoder {
            layout: EncodingLayout {
                groups,
                n_cols: next_col,
            },
            n_features: train.n_features(),
        }
    }

    /// The encoded-space layout.
    pub fn layout(&self) -> &EncodingLayout {
        &self.layout
    }

    /// Number of encoded columns.
    pub fn n_cols(&self) -> usize {
        self.layout.n_cols
    }

    /// Encodes a dataset with the same schema the encoder was fit on.
    pub fn transform(&self, data: &Dataset) -> Encoded {
        assert_eq!(
            data.n_features(),
            self.n_features,
            "transform: feature count mismatch"
        );
        let n = data.n_rows();
        let mut x = Matrix::zeros(n, self.layout.n_cols);
        for group in &self.layout.groups {
            match group {
                EncodedGroup::OneHot {
                    feature,
                    first_col,
                    n_levels,
                } => {
                    let vals = data.column(*feature).as_categorical();
                    for (r, &lvl) in vals.iter().enumerate() {
                        assert!(
                            (lvl as usize) < *n_levels,
                            "transform: unseen level {lvl} in feature {feature}"
                        );
                        x[(r, first_col + lvl as usize)] = 1.0;
                    }
                }
                EncodedGroup::Numeric {
                    feature,
                    col,
                    mean,
                    std,
                    ..
                } => {
                    let vals = data.column(*feature).as_numeric();
                    for (r, &v) in vals.iter().enumerate() {
                        x[(r, *col)] = (v - mean) / std;
                    }
                }
            }
        }
        Encoded {
            x,
            y: data.labels().iter().map(|&y| y as f64).collect(),
            privileged: data.privileged_mask(),
        }
    }

    /// Projects an encoded row onto the valid input domain in place
    /// (paper Eq. 19): numeric coordinates are clamped to the training range;
    /// each one-hot block is replaced by the nearest valid one-hot vector
    /// (1 at the argmax, 0 elsewhere).
    pub fn project_row(&self, row: &mut [f64]) {
        assert_eq!(
            row.len(),
            self.layout.n_cols,
            "project_row: length mismatch"
        );
        for group in &self.layout.groups {
            match group {
                EncodedGroup::Numeric { col, lo, hi, .. } => {
                    row[*col] = row[*col].clamp(*lo, *hi);
                }
                EncodedGroup::OneHot {
                    first_col,
                    n_levels,
                    ..
                } => {
                    let block = &mut row[*first_col..first_col + n_levels];
                    let mut best = 0usize;
                    for (i, &v) in block.iter().enumerate() {
                        if v > block[best] {
                            best = i;
                        }
                    }
                    for (i, v) in block.iter_mut().enumerate() {
                        *v = if i == best { 1.0 } else { 0.0 };
                    }
                }
            }
        }
    }

    /// Decodes a *projected* encoded row back to raw feature values.
    ///
    /// One-hot blocks decode to their argmax level; numeric columns are
    /// unstandardized. The row does not need to be exactly one-hot — the
    /// argmax is used — so this is safe to call on unprojected rows too.
    pub fn decode_row(&self, row: &[f64]) -> Vec<Value> {
        assert_eq!(row.len(), self.layout.n_cols, "decode_row: length mismatch");
        let mut out = vec![Value::Number(0.0); self.n_features];
        for group in &self.layout.groups {
            match group {
                EncodedGroup::Numeric {
                    feature,
                    col,
                    mean,
                    std,
                    ..
                } => {
                    out[*feature] = Value::Number(row[*col] * std + mean);
                }
                EncodedGroup::OneHot {
                    feature,
                    first_col,
                    n_levels,
                } => {
                    let block = &row[*first_col..first_col + n_levels];
                    let mut best = 0usize;
                    for (i, &v) in block.iter().enumerate() {
                        if v > block[best] {
                            best = i;
                        }
                    }
                    out[*feature] = Value::Level(best as u32);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Column;
    use crate::schema::{Feature, PrivilegedIf, ProtectedSpec, Schema};

    fn toy() -> Dataset {
        let schema = Schema::new(
            vec![
                Feature::categorical("color", ["red", "blue", "green"]),
                Feature::numeric("age"),
            ],
            "label",
        );
        Dataset::new(
            schema,
            vec![
                Column::Categorical(vec![0, 1, 2, 1]),
                Column::Numeric(vec![20.0, 30.0, 40.0, 50.0]),
            ],
            vec![0, 1, 1, 0],
            ProtectedSpec {
                feature: 1,
                privileged: PrivilegedIf::AtLeast(35.0),
            },
        )
    }

    #[test]
    fn layout_shapes() {
        let d = toy();
        let enc = Encoder::fit(&d);
        assert_eq!(enc.n_cols(), 4); // 3 one-hot + 1 numeric
        assert_eq!(enc.layout().groups().len(), 2);
    }

    #[test]
    fn transform_one_hot_and_standardize() {
        let d = toy();
        let enc = Encoder::fit(&d);
        let e = enc.transform(&d);
        assert_eq!(e.n_rows(), 4);
        // Row 0: color=red → [1,0,0]; age standardized.
        assert_eq!(e.x[(0, 0)], 1.0);
        assert_eq!(e.x[(0, 1)], 0.0);
        assert_eq!(e.x[(0, 2)], 0.0);
        // Standardized column has ~zero mean and unit variance.
        let col: Vec<f64> = (0..4).map(|r| e.x[(r, 3)]).collect();
        assert!(gopher_linalg::vecops::mean(&col).abs() < 1e-12);
        assert!((gopher_linalg::vecops::variance(&col) - 1.0).abs() < 1e-9);
        // Labels and privilege flow through.
        assert_eq!(e.y, vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(e.privileged, vec![false, false, true, true]);
    }

    #[test]
    fn project_clamps_and_one_hots() {
        let d = toy();
        let enc = Encoder::fit(&d);
        let mut row = vec![0.2, 0.9, 0.4, 99.0];
        enc.project_row(&mut row);
        assert_eq!(&row[..3], &[0.0, 1.0, 0.0], "argmax one-hot");
        // Numeric clamped to max standardized training value.
        let EncodedGroup::Numeric { hi, .. } = &enc.layout().groups()[1] else {
            panic!("expected numeric group");
        };
        assert_eq!(row[3], *hi);
    }

    #[test]
    fn decode_round_trips() {
        let d = toy();
        let enc = Encoder::fit(&d);
        let e = enc.transform(&d);
        for r in 0..d.n_rows() {
            let decoded = enc.decode_row(e.x.row(r));
            assert_eq!(decoded[0].as_level(), d.value(r, 0).as_level());
            assert!((decoded[1].as_number() - d.value(r, 1).as_number()).abs() < 1e-9);
        }
    }

    #[test]
    fn select_and_remove_rows() {
        let d = toy();
        let enc = Encoder::fit(&d);
        let e = enc.transform(&d);
        let s = e.select_rows(&[2, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.y, vec![1.0, 0.0]);
        let r = e.remove_rows(&[false, true, true, false]);
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.y, vec![0.0, 0.0]);
    }

    #[test]
    fn constant_numeric_column_does_not_blow_up() {
        let schema = Schema::new(vec![Feature::numeric("c")], "y");
        let d = Dataset::new(
            schema,
            vec![Column::Numeric(vec![5.0, 5.0, 5.0])],
            vec![0, 1, 0],
            ProtectedSpec {
                feature: 0,
                privileged: PrivilegedIf::AtLeast(0.0),
            },
        );
        let enc = Encoder::fit(&d);
        let e = enc.transform(&d);
        assert!(e.x.is_finite());
        assert_eq!(e.x[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "unseen level")]
    fn transform_rejects_unseen_level() {
        // Fit on a 2-level schema, transform data claiming 3 levels.
        let schema2 = Schema::new(vec![Feature::categorical("c", ["a", "b"])], "y");
        let d2 = Dataset::new(
            schema2,
            vec![Column::Categorical(vec![0, 1])],
            vec![0, 1],
            ProtectedSpec {
                feature: 0,
                privileged: PrivilegedIf::Level(0),
            },
        );
        let enc = Encoder::fit(&d2);
        let schema3 = Schema::new(vec![Feature::categorical("c", ["a", "b", "c"])], "y");
        let d3 = Dataset::new(
            schema3,
            vec![Column::Categorical(vec![2])],
            vec![1],
            ProtectedSpec {
                feature: 0,
                privileged: PrivilegedIf::Level(0),
            },
        );
        let _ = enc.transform(&d3);
    }
}
