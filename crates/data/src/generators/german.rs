//! Synthetic German Credit data.
//!
//! Mirrors the UCI German Credit schema (subset of 13 of the 20 attributes —
//! the ones the paper's explanations reference, plus enough filler to make
//! the lattice search non-trivial) and plants the bias structure the paper
//! reports for this dataset:
//!
//! * **General age bias** — older applicants (`age >= 45`, the privileged
//!   group) are labeled "good credit" more often at equal financials.
//! * **Planted subgroup A** — `age >= 45 ∧ gender = Female`: almost always
//!   labeled good (support ≈ 5%). This is the paper's Table 1 top-1 pattern.
//! * **Planted subgroup B** — `age >= 45 ∧ gender = Male ∧ credit_history =
//!   All-paid-duly`: labeled good with high probability (support ≈ 6%),
//!   Table 1's second pattern.
//! * **Planted subgroup C** — `debtors = None ∧ employment = 1..4y ∧
//!   installment_rate = 4 ∧ residence = 2`: a weaker, purely financial
//!   subgroup with inflated positive labels (Table 1's third pattern, which
//!   notably does not mention the sensitive attribute).
//!
//! Removing any planted subgroup weakens the age–label association and hence
//! reduces statistical-parity bias of a model trained on the data.

use super::{sigmoid, trunc_normal};
use crate::dataset::{Column, Dataset};
use crate::schema::{Feature, PrivilegedIf, ProtectedSpec, Schema};
use gopher_prng::{Categorical, Rng};

/// Age cutoff separating the privileged (older) group.
pub const GERMAN_AGE_CUTOFF: f64 = 45.0;

/// Generates `n_rows` of synthetic German Credit data.
pub fn german(n_rows: usize, seed: u64) -> Dataset {
    let schema = Schema::new(
        vec![
            Feature::categorical(
                "checking_status",
                ["<0", "0<=X<200", ">=200", "no_checking"],
            ),
            Feature::numeric("duration"),
            Feature::categorical(
                "credit_history",
                ["All-paid-duly", "Existing-paid-duly", "Delayed", "Critical"],
            ),
            Feature::categorical(
                "purpose",
                ["car", "furniture", "radio_tv", "education", "business"],
            ),
            Feature::numeric("credit_amount"),
            Feature::categorical("savings", ["<100", "100<=X<500", ">=500", "unknown"]),
            Feature::categorical(
                "employment",
                ["unemployed", "<1y", "1<=X<4y", "4<=X<7y", ">=7y"],
            ),
            Feature::numeric("installment_rate"),
            Feature::categorical("debtors", ["None", "Co-applicant", "Guarantor"]),
            Feature::numeric("residence"),
            Feature::numeric("age"),
            Feature::categorical("housing", ["own", "rent", "free"]),
            Feature::categorical("gender", ["Female", "Male"]),
        ],
        "good_credit",
    );

    let mut rng = Rng::new(seed ^ 0x6765_726d_616e); // "german"
    let checking_dist = Categorical::new(&[0.27, 0.27, 0.06, 0.40]).expect("valid weights");
    let purpose_dist = Categorical::new(&[0.33, 0.18, 0.28, 0.09, 0.12]).expect("valid weights");
    let savings_dist = Categorical::new(&[0.60, 0.15, 0.10, 0.15]).expect("valid weights");
    let employment_dist = Categorical::new(&[0.06, 0.17, 0.34, 0.17, 0.26]).expect("valid weights");
    let debtors_dist = Categorical::new(&[0.82, 0.08, 0.10]).expect("valid weights");
    let housing_dist = Categorical::new(&[0.71, 0.18, 0.11]).expect("valid weights");

    let n = n_rows;
    let mut checking = Vec::with_capacity(n);
    let mut duration = Vec::with_capacity(n);
    let mut history = Vec::with_capacity(n);
    let mut purpose = Vec::with_capacity(n);
    let mut amount = Vec::with_capacity(n);
    let mut savings = Vec::with_capacity(n);
    let mut employment = Vec::with_capacity(n);
    let mut installment = Vec::with_capacity(n);
    let mut debtors = Vec::with_capacity(n);
    let mut residence = Vec::with_capacity(n);
    let mut age = Vec::with_capacity(n);
    let mut housing = Vec::with_capacity(n);
    let mut gender = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);

    for _ in 0..n {
        // Demographics. Age skews young so that P(age >= 45) ≈ 0.16, which
        // with P(Female | old) ≈ 0.33 gives planted subgroup A a support of
        // roughly 5% (the paper's Table 1 value).
        let a = trunc_normal(&mut rng, 35.0, 10.0, 19.0, 75.0);
        let old = a >= GERMAN_AGE_CUTOFF;
        let g = if old {
            u32::from(!rng.bernoulli(0.33)) // 33% female among the old
        } else {
            u32::from(!rng.bernoulli(0.46)) // 46% female among the young
        };

        let chk = checking_dist.sample(&mut rng) as u32;
        let dur = trunc_normal(&mut rng, 21.0, 12.0, 4.0, 72.0).round();
        // Older applicants have longer credit histories; "All-paid-duly" is
        // boosted for them so planted subgroup B reaches ≈ 6% support.
        let hist = if old {
            Categorical::new(&[0.55, 0.30, 0.08, 0.07])
                .expect("valid weights")
                .sample(&mut rng)
        } else {
            Categorical::new(&[0.15, 0.50, 0.17, 0.18])
                .expect("valid weights")
                .sample(&mut rng)
        } as u32;
        let pur = purpose_dist.sample(&mut rng) as u32;
        let amt = (rng.normal_with(0.0, 0.8).exp() * 2500.0)
            .clamp(250.0, 18500.0)
            .round();
        let sav = savings_dist.sample(&mut rng) as u32;
        let emp = employment_dist.sample(&mut rng) as u32;
        let inst = (rng.range(1, 5)) as f64; // 1..=4
        let deb = debtors_dist.sample(&mut rng) as u32;
        let res = (rng.range(1, 5)) as f64; // 1..=4
        let hou = housing_dist.sample(&mut rng) as u32;

        // Latent creditworthiness from the financial attributes only.
        let mut score = 0.0;
        score += match chk {
            0 => -0.9, // overdrawn account
            1 => -0.2,
            2 => 0.8,
            _ => 0.4, // no checking account: mild positive, as in UCI data
        };
        score += -0.02 * (dur - 21.0); // longer loans are riskier
        score += match hist {
            0 => 0.5,
            1 => 0.3,
            2 => -0.4,
            _ => -0.8, // critical history
        };
        score += -0.00008 * (amt - 2500.0);
        score += match sav {
            0 => -0.3,
            1 => 0.1,
            2 => 0.6,
            _ => 0.0,
        };
        score += match emp {
            0 => -0.6,
            1 => -0.2,
            2 => 0.1,
            3 => 0.3,
            _ => 0.5,
        };
        score += -0.15 * (inst - 2.5); // higher installment rate = tighter budget
        score += match deb {
            2 => 0.4, // guarantor helps
            1 => -0.1,
            _ => 0.0,
        };
        score += match hou {
            0 => 0.25, // owns housing
            1 => -0.1,
            _ => 0.0,
        };
        // General (mild) age drift: the historical bias of the dataset.
        if old {
            score += 0.25;
        }

        let mut p_good = sigmoid(score + 0.25);

        // Planted subgroups — systematic labeling errors, not noise.
        let subgroup_a = old && g == 0;
        let subgroup_b = old && g == 1 && hist == 0;
        let subgroup_c = deb == 0 && emp == 2 && inst == 4.0 && res == 2.0;
        if subgroup_a {
            p_good = 0.975;
        } else if subgroup_b {
            p_good = 0.95;
        } else if subgroup_c {
            p_good = p_good.max(0.85);
        }

        let y = u8::from(rng.bernoulli(p_good));

        checking.push(chk);
        duration.push(dur);
        history.push(hist);
        purpose.push(pur);
        amount.push(amt);
        savings.push(sav);
        employment.push(emp);
        installment.push(inst);
        debtors.push(deb);
        residence.push(res);
        age.push(a.round());
        housing.push(hou);
        gender.push(g);
        labels.push(y);
    }

    let age_idx = schema.feature_index("age").expect("age feature exists");
    Dataset::new(
        schema,
        vec![
            Column::Categorical(checking),
            Column::Numeric(duration),
            Column::Categorical(history),
            Column::Categorical(purpose),
            Column::Numeric(amount),
            Column::Categorical(savings),
            Column::Categorical(employment),
            Column::Numeric(installment),
            Column::Categorical(debtors),
            Column::Numeric(residence),
            Column::Numeric(age),
            Column::Categorical(housing),
            Column::Categorical(gender),
        ],
        labels,
        ProtectedSpec {
            feature: age_idx,
            privileged: PrivilegedIf::AtLeast(GERMAN_AGE_CUTOFF),
        },
    )
}
