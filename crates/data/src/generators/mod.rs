//! Synthetic stand-ins for the paper's evaluation datasets.
//!
//! The real datasets (UCI German Credit, UCI Adult, NYPD SQF) are not
//! available offline, so each generator reproduces the *schema* and — more
//! importantly — the *documented bias structure* that the paper's experiments
//! rely on. Every planted bias is written down in the generator's docs, so
//! "does Gopher recover the planted root cause?" is a well-posed question
//! with a known answer. See DESIGN.md §2 for the substitution table.
//!
//! All generators are deterministic given `(n_rows, seed)`.

mod adult;
mod german;
mod sqf;

pub use adult::adult;
pub use german::german;
pub use sqf::sqf;

use gopher_prng::Rng;

/// Logistic squashing used by all generators to convert a latent score into
/// a label probability.
pub(crate) fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Samples a truncated normal by rejection (falls back to clamping after a
/// bounded number of tries; fine for data generation).
pub(crate) fn trunc_normal(rng: &mut Rng, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
    for _ in 0..16 {
        let v = rng.normal_with(mean, std);
        if v >= lo && v <= hi {
            return v;
        }
    }
    rng.normal_with(mean, std).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn check_common(d: &Dataset, n: usize) {
        assert_eq!(d.n_rows(), n);
        let pos = d.positive_rate();
        assert!(pos > 0.15 && pos < 0.85, "degenerate positive rate {pos}");
        let priv_frac = d.privileged_mask().iter().filter(|&&p| p).count() as f64 / n as f64;
        assert!(
            priv_frac > 0.05 && priv_frac < 0.95,
            "degenerate privileged fraction {priv_frac}"
        );
    }

    #[test]
    fn german_shape_and_determinism() {
        let d = german(1000, 7);
        check_common(&d, 1000);
        assert_eq!(d.n_features(), 13);
        let d2 = german(1000, 7);
        assert_eq!(d, d2, "same seed must reproduce the dataset exactly");
        let d3 = german(1000, 8);
        assert_ne!(d, d3, "different seeds should differ");
    }

    #[test]
    fn adult_shape() {
        let d = adult(2000, 1);
        check_common(&d, 2000);
        assert_eq!(d.n_features(), 8);
        // Privileged group = males.
        let gender = d.schema().feature_index("gender").unwrap();
        assert_eq!(d.protected().feature, gender);
    }

    #[test]
    fn sqf_shape() {
        let d = sqf(3000, 2);
        check_common(&d, 3000);
        assert_eq!(d.n_features(), 9);
    }

    #[test]
    fn german_has_planted_age_bias() {
        // Old individuals must have a visibly higher positive-label rate:
        // that is the bias the experiments debug.
        let d = german(4000, 3);
        let mask = d.privileged_mask();
        let mut old = (0usize, 0usize);
        let mut young = (0usize, 0usize);
        for (r, &is_priv) in mask.iter().enumerate() {
            let y = d.labels()[r] as usize;
            if is_priv {
                old = (old.0 + y, old.1 + 1);
            } else {
                young = (young.0 + y, young.1 + 1);
            }
        }
        let rate_old = old.0 as f64 / old.1 as f64;
        let rate_young = young.0 as f64 / young.1 as f64;
        assert!(
            rate_old - rate_young > 0.1,
            "expected label bias toward the old: {rate_old} vs {rate_young}"
        );
    }

    #[test]
    fn adult_has_planted_gender_bias() {
        let d = adult(4000, 4);
        let mask = d.privileged_mask();
        let mut m = (0usize, 0usize);
        let mut f = (0usize, 0usize);
        for (r, &is_priv) in mask.iter().enumerate() {
            let y = d.labels()[r] as usize;
            if is_priv {
                m = (m.0 + y, m.1 + 1);
            } else {
                f = (f.0 + y, f.1 + 1);
            }
        }
        let rate_m = m.0 as f64 / m.1 as f64;
        let rate_f = f.0 as f64 / f.1 as f64;
        assert!(rate_m - rate_f > 0.1, "males {rate_m} vs females {rate_f}");
    }

    #[test]
    fn sqf_has_planted_race_bias() {
        // Favorable label (1) = not frisked; whites should receive it more.
        let d = sqf(4000, 5);
        let mask = d.privileged_mask();
        let mut w = (0usize, 0usize);
        let mut nw = (0usize, 0usize);
        for (r, &is_priv) in mask.iter().enumerate() {
            let y = d.labels()[r] as usize;
            if is_priv {
                w = (w.0 + y, w.1 + 1);
            } else {
                nw = (nw.0 + y, nw.1 + 1);
            }
        }
        let rate_w = w.0 as f64 / w.1 as f64;
        let rate_nw = nw.0 as f64 / nw.1 as f64;
        assert!(
            rate_w - rate_nw > 0.1,
            "white {rate_w} vs non-white {rate_nw}"
        );
    }

    /// At SQF scale the generator's own planted-rate assertions run (they
    /// are gated on n ≥ 100k), and the planted subgroup A must be
    /// recoverable from the emitted columns with its frisk rate intact —
    /// the structure the `scale_1m` bench tier sweeps for.
    #[test]
    fn sqf_large_n_keeps_planted_rates() {
        let d = sqf(200_000, 11); // generation itself asserts the rates
        assert_eq!(d.n_rows(), 200_000);
        let race = d.schema().feature_index("race").unwrap();
        let black = d.schema().level_index(race, "Black").unwrap();
        let age = d.schema().feature_index("age").unwrap();
        let fits = d.schema().feature_index("fits_description").unwrap();
        let location = d.schema().feature_index("location").unwrap();
        let mut members = 0usize;
        let mut frisked = 0usize;
        for r in 0..d.n_rows() {
            if d.value(r, race).as_level() == black
                && d.value(r, fits).as_level() == 0
                && d.value(r, location).as_level() == 0
                && d.value(r, age).as_number() < 25.0
            {
                members += 1;
                // Label 1 = not frisked.
                frisked += usize::from(d.labels()[r] == 0);
            }
        }
        let support = members as f64 / d.n_rows() as f64;
        assert!(
            (0.05..0.30).contains(&support),
            "subgroup A support {support}"
        );
        let rate = frisked as f64 / members as f64;
        assert!(rate > 0.75, "subgroup A frisk rate {rate}");
    }

    #[test]
    fn planted_german_subgroup_exists_with_expected_support() {
        // (age >= 45) ∧ (gender = Female) should cover roughly 4–9% of rows
        // and be almost always labeled positive — the paper's top-1 pattern.
        let d = german(8000, 6);
        let age = d.schema().feature_index("age").unwrap();
        let gender = d.schema().feature_index("gender").unwrap();
        let female = d.schema().level_index(gender, "Female").unwrap();
        let mut members = 0usize;
        let mut positives = 0usize;
        for r in 0..d.n_rows() {
            if d.value(r, age).as_number() >= 45.0 && d.value(r, gender).as_level() == female {
                members += 1;
                positives += d.labels()[r] as usize;
            }
        }
        let support = members as f64 / d.n_rows() as f64;
        assert!(
            (0.03..=0.10).contains(&support),
            "planted subgroup support {support}"
        );
        let rate = positives as f64 / members as f64;
        assert!(rate > 0.85, "planted subgroup positive rate {rate}");
    }
}
