//! Synthetic Stop, Question and Frisk (SQF) data.
//!
//! Mirrors the NYPD SQF schema used by the paper (stop circumstances plus
//! demographics). The label is **1 = not frisked** so that, as everywhere
//! else in this workspace, `Ŷ = 1` is the favorable outcome; the privileged
//! group is `race = White`.
//!
//! Planted structure (matching the paper's Table 3/6 findings):
//!
//! * Legitimate frisk drivers: fitting a relevant description, suspicion of a
//!   violent crime, casing a victim, proximity to a crime scene, night stops.
//! * **Planted subgroup A** — `race = Black ∧ fits_description = No ∧
//!   location = Outside ∧ age < 25`: frisked despite no description match
//!   (support ≈ 17%).
//! * **Planted subgroup B** — same but `age ∈ [25, 45)` (support ≈ 13%).
//! * **Planted subgroup C** — `race = White ∧ violent_crime = No ∧
//!   casing_victim = Yes ∧ proximity = No`: *not* frisked despite casing
//!   behaviour (support ≈ 7%) — the discrimination in favour of the
//!   privileged group that Table 3's third pattern exposes.

use super::{sigmoid, trunc_normal};
use crate::dataset::{Column, Dataset};
use crate::schema::{Feature, PrivilegedIf, ProtectedSpec, Schema};
use gopher_prng::{Categorical, Rng};

/// Generates `n_rows` of synthetic SQF data.
pub fn sqf(n_rows: usize, seed: u64) -> Dataset {
    let schema = Schema::new(
        vec![
            Feature::categorical("race", ["Black", "Latino", "White", "Other"]),
            Feature::numeric("age"),
            Feature::categorical("location", ["Outside", "Inside"]),
            Feature::categorical("fits_description", ["No", "Yes"]),
            Feature::categorical("casing_victim", ["No", "Yes"]),
            Feature::categorical("violent_crime", ["No", "Yes"]),
            Feature::categorical("proximity_to_scene", ["No", "Yes"]),
            Feature::categorical("time_of_day", ["Day", "Night"]),
            Feature::categorical("build", ["Thin", "Medium", "Heavy"]),
        ],
        "not_frisked",
    );

    let mut rng = Rng::new(seed ^ 0x0073_7166); // "sqf"
                                                // Stop demographics follow the real data's heavy skew.
    let race_dist = Categorical::new(&[0.54, 0.29, 0.12, 0.05]).expect("weights");
    let build_dist = Categorical::new(&[0.30, 0.55, 0.15]).expect("weights");

    let n = n_rows;
    let mut race_c = Vec::with_capacity(n);
    let mut age_c = Vec::with_capacity(n);
    let mut location_c = Vec::with_capacity(n);
    let mut fits_c = Vec::with_capacity(n);
    let mut casing_c = Vec::with_capacity(n);
    let mut violent_c = Vec::with_capacity(n);
    let mut proximity_c = Vec::with_capacity(n);
    let mut time_c = Vec::with_capacity(n);
    let mut build_c = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);

    // Planted-bias bookkeeping: at large n the realized subgroup supports
    // and frisk rates are asserted against the planted parameters, so a
    // regression in the planting logic (or the RNG plumbing feeding it)
    // fails at generation time instead of surfacing as a mysteriously
    // unbiased benchmark dataset downstream.
    let mut a_rows = 0usize;
    let mut a_frisked = 0usize;
    let mut c_rows = 0usize;
    let mut c_frisked = 0usize;

    for _ in 0..n {
        let race = race_dist.sample(&mut rng) as u32;
        let white = race == 2;
        let age = trunc_normal(&mut rng, 27.0, 11.0, 14.0, 70.0).round();
        let location = u32::from(rng.bernoulli(0.25)); // 75% Outside
        let fits = u32::from(rng.bernoulli(0.18));
        // Casing is recorded more often for white stops in this synthetic
        // slice, so planted subgroup C reaches ≈ 7% support.
        let casing = u32::from(rng.bernoulli(if white { 0.45 } else { 0.18 }));
        let violent = u32::from(rng.bernoulli(0.15));
        let proximity = u32::from(rng.bernoulli(0.25));
        let night = u32::from(rng.bernoulli(0.45));
        let build = build_dist.sample(&mut rng) as u32;

        // Latent frisk propensity from legitimate stop factors.
        let mut frisk_score = -1.1;
        if fits == 1 {
            frisk_score += 1.6;
        }
        if violent == 1 {
            frisk_score += 1.3;
        }
        if casing == 1 {
            frisk_score += 0.9;
        }
        if proximity == 1 {
            frisk_score += 0.7;
        }
        if night == 1 {
            frisk_score += 0.3;
        }
        if build == 2 {
            frisk_score += 0.15;
        }
        let mut p_frisk = sigmoid(frisk_score);

        // Planted discriminatory practice.
        let subgroup_a = race == 0 && fits == 0 && location == 0 && age < 25.0;
        let subgroup_b = race == 0 && fits == 0 && location == 0 && (25.0..45.0).contains(&age);
        let subgroup_c = white && violent == 0 && casing == 1 && proximity == 0;
        if subgroup_a {
            p_frisk = p_frisk.max(0.82);
        } else if subgroup_b {
            p_frisk = p_frisk.max(0.70);
        }
        if subgroup_c {
            p_frisk = p_frisk.min(0.06);
        }

        let frisked = rng.bernoulli(p_frisk);
        if subgroup_a {
            a_rows += 1;
            a_frisked += usize::from(frisked);
        }
        if subgroup_c {
            c_rows += 1;
            c_frisked += usize::from(frisked);
        }

        // Label 1 = NOT frisked (favorable).
        labels.push(u8::from(!frisked));
        race_c.push(race);
        age_c.push(age);
        location_c.push(location);
        fits_c.push(fits);
        casing_c.push(casing);
        violent_c.push(violent);
        proximity_c.push(proximity);
        time_c.push(night);
        build_c.push(build);
    }

    // Generation-time sanity check on the planted bias. Only at large n,
    // where the binomial noise around the planted rates is far smaller than
    // the slack in these bands (at 100k rows subgroup A alone has tens of
    // thousands of members; a band this wide is > 50σ from the mean).
    if n >= 100_000 {
        let a_support = a_rows as f64 / n as f64;
        let a_rate = a_frisked as f64 / a_rows.max(1) as f64;
        assert!(
            (0.05..0.30).contains(&a_support) && a_rate > 0.75,
            "planted subgroup A drifted: support {a_support:.4}, frisk rate {a_rate:.4}"
        );
        let c_support = c_rows as f64 / n as f64;
        let c_not_frisked = 1.0 - c_frisked as f64 / c_rows.max(1) as f64;
        assert!(
            (0.01..0.10).contains(&c_support) && c_not_frisked > 0.90,
            "planted subgroup C drifted: support {c_support:.4}, not-frisked rate {c_not_frisked:.4}"
        );
    }

    let race_idx = schema.feature_index("race").expect("race feature exists");
    let white_level = schema
        .level_index(race_idx, "White")
        .expect("White level exists");
    Dataset::new(
        schema,
        vec![
            Column::Categorical(race_c),
            Column::Numeric(age_c),
            Column::Categorical(location_c),
            Column::Categorical(fits_c),
            Column::Categorical(casing_c),
            Column::Categorical(violent_c),
            Column::Categorical(proximity_c),
            Column::Categorical(time_c),
            Column::Categorical(build_c),
        ],
        labels,
        ProtectedSpec {
            feature: race_idx,
            privileged: PrivilegedIf::Level(white_level),
        },
    )
}
