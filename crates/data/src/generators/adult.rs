//! Synthetic Adult (Census Income) data.
//!
//! Mirrors the UCI Adult schema (8 of the 14 attributes — those the paper's
//! Table 2/5 explanations reference) and plants the dataset's documented
//! inconsistency: *income attributes of married individuals report household
//! income*, which couples `marital`/`relationship` with the label and — since
//! there are more married males — induces gender bias.
//!
//! Planted structure:
//!
//! * **Household-income artifact** — `marital = Married-civ-spouse ∧
//!   relationship ∈ {Husband, Wife}` gets a large label boost. Combined with
//!   the higher marriage rate of males this is the dominant source of the
//!   statistical-parity gap (the paper notes the single predicate
//!   `marital = Married` removes bias almost completely but has ~47% support
//!   and hence a low interestingness score).
//! * **Planted subgroup A** — `gender = Male ∧ education = Bachelors ∧
//!   workclass = Private`: inflated positive labels (Table 2 pattern 1,
//!   support ≈ 8%).
//! * **Planted subgroup B** — `gender = Female ∧ marital =
//!   Divorced/Separated ∧ age >= 45`: suppressed positive labels
//!   (Table 2 pattern 2, support ≈ 6%).
//! * **Education gradient** — higher education lifts income for everyone
//!   (the secondary driver the paper's update experiments exploit).

use super::{sigmoid, trunc_normal};
use crate::dataset::{Column, Dataset};
use crate::schema::{Feature, PrivilegedIf, ProtectedSpec, Schema};
use gopher_prng::{Categorical, Rng};

/// Generates `n_rows` of synthetic Adult census data.
pub fn adult(n_rows: usize, seed: u64) -> Dataset {
    let schema = Schema::new(
        vec![
            Feature::numeric("age"),
            Feature::categorical(
                "workclass",
                [
                    "Private",
                    "Self-emp",
                    "Federal-gov",
                    "Local-gov",
                    "Unemployed",
                ],
            ),
            Feature::categorical(
                "education",
                [
                    "11th",
                    "HS-grad",
                    "Some-college",
                    "Assoc-voc",
                    "Assoc-acdm",
                    "Bachelors",
                    "Masters",
                    "Prof-school",
                ],
            ),
            Feature::categorical(
                "marital",
                [
                    "Never-married",
                    "Married-civ-spouse",
                    "Divorced/Separated",
                    "Widowed",
                ],
            ),
            Feature::categorical(
                "relationship",
                ["Husband", "Wife", "Not-in-family", "Own-child", "Unmarried"],
            ),
            Feature::categorical("race", ["White", "Black", "Asian", "Other"]),
            Feature::categorical("gender", ["Female", "Male"]),
            Feature::numeric("hours"),
        ],
        "income_gt_50k",
    );

    let mut rng = Rng::new(seed ^ 0x0061_6475_6c74); // "adult"
    let workclass_dist = Categorical::new(&[0.70, 0.11, 0.04, 0.09, 0.06]).expect("weights");
    let education_dist =
        Categorical::new(&[0.05, 0.32, 0.22, 0.04, 0.04, 0.20, 0.08, 0.05]).expect("weights");
    let race_dist = Categorical::new(&[0.78, 0.12, 0.06, 0.04]).expect("weights");

    let n = n_rows;
    let mut age_c = Vec::with_capacity(n);
    let mut workclass_c = Vec::with_capacity(n);
    let mut education_c = Vec::with_capacity(n);
    let mut marital_c = Vec::with_capacity(n);
    let mut relationship_c = Vec::with_capacity(n);
    let mut race_c = Vec::with_capacity(n);
    let mut gender_c = Vec::with_capacity(n);
    let mut hours_c = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);

    for _ in 0..n {
        let male = rng.bernoulli(0.55);
        let g = u32::from(male);
        let a = trunc_normal(&mut rng, 39.0, 13.0, 17.0, 80.0).round();
        let wc = workclass_dist.sample(&mut rng) as u32;
        let edu = education_dist.sample(&mut rng) as u32;
        let race = race_dist.sample(&mut rng) as u32;

        // Marital status: males are married more often in this census slice
        // (the demographic asymmetry that turns the household-income artifact
        // into gender bias).
        let p_married = if male { 0.58 } else { 0.36 };
        let marital = if rng.bernoulli(p_married) {
            1u32 // Married-civ-spouse
        } else {
            // Never-married / Divorced / Widowed, age-dependent.
            if a >= 45.0 {
                *rng.choose(&[0u32, 2, 2, 3])
            } else {
                *rng.choose(&[0u32, 0, 0, 2])
            }
        };

        // Relationship is consistent with marital status and gender.
        let relationship = if marital == 1 {
            if male {
                0u32 // Husband
            } else {
                1u32 // Wife
            }
        } else if a < 25.0 && rng.bernoulli(0.5) {
            3u32 // Own-child
        } else if rng.bernoulli(0.6) {
            2u32 // Not-in-family
        } else {
            4u32 // Unmarried
        };

        let hours = if male {
            trunc_normal(&mut rng, 43.0, 9.0, 10.0, 80.0).round()
        } else {
            trunc_normal(&mut rng, 38.0, 9.0, 10.0, 80.0).round()
        };

        // Latent income score from legitimate factors.
        let mut score = -1.6;
        score += match edu {
            0 => -0.8,
            1 => -0.3,
            2 => 0.0,
            3 => 0.1,
            4 => 0.2,
            5 => 0.7,
            6 => 1.0,
            _ => 1.3, // Prof-school
        };
        score += 0.03 * (hours - 40.0);
        // Mid-career income peak.
        score += -0.0015 * (a - 48.0) * (a - 48.0) + 0.4;
        score += match wc {
            2 => 0.3,  // Federal-gov
            1 => 0.2,  // Self-emp
            4 => -1.2, // Unemployed
            _ => 0.0,
        };

        // Household-income artifact: married respondents report household
        // income, inflating their labels.
        if marital == 1 && (relationship == 0 || relationship == 1) {
            score += 1.5;
        }

        let mut p_rich = sigmoid(score);

        // Planted subgroups (systematic, not noise).
        let subgroup_a = male && edu == 5 && wc == 0; // Male ∧ Bachelors ∧ Private
        let subgroup_b = !male && marital == 2 && a >= 45.0; // Female ∧ Divorced ∧ old
        if subgroup_a {
            p_rich = p_rich.max(0.80);
        }
        if subgroup_b {
            p_rich = p_rich.min(0.04);
        }

        labels.push(u8::from(rng.bernoulli(p_rich)));
        age_c.push(a);
        workclass_c.push(wc);
        education_c.push(edu);
        marital_c.push(marital);
        relationship_c.push(relationship);
        race_c.push(race);
        gender_c.push(g);
        hours_c.push(hours);
    }

    let gender_idx = schema
        .feature_index("gender")
        .expect("gender feature exists");
    let male_level = schema
        .level_index(gender_idx, "Male")
        .expect("Male level exists");
    Dataset::new(
        schema,
        vec![
            Column::Numeric(age_c),
            Column::Categorical(workclass_c),
            Column::Categorical(education_c),
            Column::Categorical(marital_c),
            Column::Categorical(relationship_c),
            Column::Categorical(race_c),
            Column::Categorical(gender_c),
            Column::Numeric(hours_c),
        ],
        labels,
        ProtectedSpec {
            feature: gender_idx,
            privileged: PrivilegedIf::Level(male_level),
        },
    )
}
