//! Quantile binning of numeric features.
//!
//! Algorithm 1 in the paper enumerates single-predicate patterns `X = v`,
//! `X < v`, `X > v` for every value `v` of every feature. For numeric
//! features with many distinct values this explodes the candidate set and
//! produces near-duplicate explanations (`hours < 40` vs `hours < 42`), so
//! the paper applies binning first. We use quantile bins: thresholds are
//! placed at equally spaced quantiles of the observed values, which adapts
//! to skewed distributions.

/// Thresholds splitting a numeric feature's range into bins.
///
/// `thresholds` is strictly increasing; value `v` falls into bin
/// `thresholds.partition_point(|t| t <= v)` (bin 0 is `(-inf, t₀)`, the last
/// bin is `[t_last, +inf)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Bins {
    thresholds: Vec<f64>,
}

impl Bins {
    /// Computes up to `max_bins` quantile bins from observed values.
    ///
    /// Fewer bins are produced when the data has few distinct values (e.g. an
    /// integer-coded feature with 4 levels gets at most 3 thresholds).
    ///
    /// # Panics
    /// If `max_bins < 2`.
    pub fn quantile(values: &[f64], max_bins: usize) -> Bins {
        assert!(max_bins >= 2, "binning needs at least 2 bins");
        if values.is_empty() {
            return Bins {
                thresholds: Vec::new(),
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mut thresholds = Vec::with_capacity(max_bins - 1);
        for k in 1..max_bins {
            // Threshold at the k/max_bins quantile.
            let pos = (k as f64 / max_bins as f64 * n as f64) as usize;
            let t = sorted[pos.min(n - 1)];
            // Keep thresholds strictly increasing (skip duplicates caused by
            // repeated values).
            if thresholds.last().is_none_or(|&last| t > last) {
                thresholds.push(t);
            }
        }
        // Drop a threshold equal to the minimum: it would create an empty
        // first bin.
        if thresholds.first() == sorted.first() {
            thresholds.remove(0);
        }
        Bins { thresholds }
    }

    /// The bin thresholds (strictly increasing).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Number of bins (`thresholds.len() + 1`).
    pub fn n_bins(&self) -> usize {
        self.thresholds.len() + 1
    }

    /// The bin index of a value.
    pub fn bin_of(&self, v: f64) -> usize {
        self.thresholds.partition_point(|&t| t <= v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_values_get_even_bins() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let bins = Bins::quantile(&values, 4);
        assert_eq!(bins.n_bins(), 4);
        assert_eq!(bins.thresholds(), &[25.0, 50.0, 75.0]);
        assert_eq!(bins.bin_of(0.0), 0);
        assert_eq!(bins.bin_of(25.0), 1, "threshold value goes to upper bin");
        assert_eq!(bins.bin_of(99.0), 3);
        assert_eq!(bins.bin_of(-5.0), 0);
        assert_eq!(bins.bin_of(1000.0), 3);
    }

    #[test]
    fn repeated_values_collapse_bins() {
        let values = vec![1.0; 50];
        let bins = Bins::quantile(&values, 4);
        // All values identical: no usable threshold.
        assert_eq!(bins.n_bins(), 1);
        assert_eq!(bins.bin_of(1.0), 0);
    }

    #[test]
    fn skewed_values_adapt() {
        // 90 small values, 10 large. With coarse bins the tail hides inside
        // the top quantile; with enough bins a threshold lands in the tail.
        let mut values = vec![0.0; 90];
        values.extend((0..10).map(|i| 100.0 + i as f64));
        let coarse = Bins::quantile(&values, 4);
        assert_eq!(coarse.n_bins(), 1, "all coarse quantiles collapse onto 0.0");
        let fine = Bins::quantile(&values, 20);
        assert!(
            fine.thresholds().iter().any(|&t| t >= 100.0),
            "a fine threshold should separate the tail: {:?}",
            fine.thresholds()
        );
    }

    #[test]
    fn thresholds_strictly_increasing() {
        let values = vec![1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 4.0, 5.0, 5.0, 5.0];
        let bins = Bins::quantile(&values, 5);
        for w in bins.thresholds().windows(2) {
            assert!(
                w[0] < w[1],
                "thresholds not increasing: {:?}",
                bins.thresholds()
            );
        }
    }

    #[test]
    fn empty_input_yields_single_bin() {
        let bins = Bins::quantile(&[], 4);
        assert_eq!(bins.n_bins(), 1);
        assert_eq!(bins.bin_of(42.0), 0);
    }

    #[test]
    fn integer_coded_feature() {
        // Installment rate 1..=4 as in German Credit.
        let values: Vec<f64> = (0..100).map(|i| (i % 4 + 1) as f64).collect();
        let bins = Bins::quantile(&values, 8);
        // At most 3 distinct thresholds possible (2,3,4), and the bin of each
        // integer must be distinct.
        assert!(bins.n_bins() <= 4);
        let bin_ids: Vec<usize> = [1.0, 2.0, 3.0, 4.0]
            .iter()
            .map(|&v| bins.bin_of(v))
            .collect();
        let mut dedup = bin_ids.clone();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            bin_ids.len(),
            "each integer in own bin: {bin_ids:?}"
        );
    }
}
