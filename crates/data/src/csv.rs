//! Minimal CSV export/import for datasets.
//!
//! Exports render categorical levels by name; imports validate against a
//! provided schema (this is a debugging/inspection facility, not a general
//! CSV parser — fields must not contain commas, quotes or newlines, which
//! holds for every schema in this workspace).

use crate::dataset::{Column, Dataset, Value};
use crate::schema::{FeatureKind, ProtectedSpec, Schema};
use std::io::{BufRead, BufWriter, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the CSV content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "csv io error: {e}"),
            Self::Parse { line, message } => write!(f, "csv parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes the dataset as CSV: a header row of feature names plus the label
/// column, then one row per example.
pub fn write_csv<W: Write>(data: &Dataset, writer: W) -> Result<(), CsvError> {
    let mut out = BufWriter::new(writer);
    let schema = data.schema();
    let header: Vec<&str> = schema
        .features()
        .iter()
        .map(|f| f.name.as_str())
        .chain(std::iter::once(schema.label_name.as_str()))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for r in 0..data.n_rows() {
        for f in 0..data.n_features() {
            match data.value(r, f) {
                Value::Level(l) => write!(out, "{}", schema.level_name(f, l))?,
                Value::Number(x) => write!(out, "{x}")?,
            }
            out.write_all(b",")?;
        }
        writeln!(out, "{}", data.labels()[r])?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a CSV produced by [`write_csv`] back into a [`Dataset`], validating
/// it against `schema` and attaching `protected`.
pub fn read_csv<R: BufRead>(
    reader: R,
    schema: &Schema,
    protected: ProtectedSpec,
) -> Result<Dataset, CsvError> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or(CsvError::Parse {
        line: 1,
        message: "missing header".into(),
    })??;
    let names: Vec<&str> = header.split(',').collect();
    let expected = schema.n_features() + 1;
    if names.len() != expected {
        return Err(CsvError::Parse {
            line: 1,
            message: format!("expected {expected} columns, found {}", names.len()),
        });
    }
    for (i, feat) in schema.features().iter().enumerate() {
        if names[i] != feat.name {
            return Err(CsvError::Parse {
                line: 1,
                message: format!("column {i} is {:?}, expected {:?}", names[i], feat.name),
            });
        }
    }

    let mut columns: Vec<Column> = schema
        .features()
        .iter()
        .map(|f| match f.kind {
            FeatureKind::Categorical { .. } => Column::Categorical(Vec::new()),
            FeatureKind::Numeric => Column::Numeric(Vec::new()),
        })
        .collect();
    let mut labels = Vec::new();

    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("expected {expected} fields, found {}", fields.len()),
            });
        }
        for (f, field) in fields[..schema.n_features()].iter().enumerate() {
            match &mut columns[f] {
                Column::Categorical(vals) => {
                    let lvl = schema
                        .level_index(f, field)
                        .ok_or_else(|| CsvError::Parse {
                            line: line_no,
                            message: format!("unknown level {field:?} for feature {f}"),
                        })?;
                    vals.push(lvl);
                }
                Column::Numeric(vals) => {
                    let x: f64 = field.parse().map_err(|_| CsvError::Parse {
                        line: line_no,
                        message: format!("invalid number {field:?}"),
                    })?;
                    vals.push(x);
                }
            }
        }
        let y: u8 = fields[schema.n_features()]
            .parse()
            .map_err(|_| CsvError::Parse {
                line: line_no,
                message: format!("invalid label {:?}", fields[schema.n_features()]),
            })?;
        labels.push(y);
    }

    Ok(Dataset::new(schema.clone(), columns, labels, protected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::german;
    use std::io::Cursor;

    #[test]
    fn round_trips_german() {
        let d = german(50, 1);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv(Cursor::new(&buf), d.schema(), d.protected().clone()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn header_has_label_column() {
        let d = german(2, 1);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let header = text.lines().next().unwrap();
        assert!(header.ends_with(",good_credit"), "{header}");
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn rejects_wrong_column_count() {
        let d = german(2, 1);
        let err = read_csv(
            Cursor::new(b"a,b\n" as &[u8]),
            d.schema(),
            d.protected().clone(),
        )
        .unwrap_err();
        match err {
            CsvError::Parse { line: 1, .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_level() {
        let d = german(1, 1);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // Corrupt the first data field (checking_status) to a bogus level.
        let lines: Vec<&str> = text.lines().collect();
        let mut fields: Vec<&str> = lines[1].split(',').collect();
        fields[0] = "BOGUS";
        let corrupted = fields.join(",");
        text = format!("{}\n{}\n", lines[0], corrupted);
        let err = read_csv(
            Cursor::new(text.as_bytes()),
            d.schema(),
            d.protected().clone(),
        )
        .unwrap_err();
        match err {
            CsvError::Parse { line: 2, message } => assert!(message.contains("BOGUS")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn skips_blank_lines() {
        let d = german(3, 2);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        let back = read_csv(
            Cursor::new(text.as_bytes()),
            d.schema(),
            d.protected().clone(),
        )
        .unwrap();
        assert_eq!(back.n_rows(), 3);
    }
}
