//! Minimal CSV export/import for datasets.
//!
//! Exports render categorical levels by name; imports either validate
//! against a provided schema ([`read_csv`]) or *infer* one from the data
//! ([`read_csv_infer`], the path the CLI's `--csv` flag uses for foreign
//! datasets). Both directions speak RFC-4180 quoting: a field wrapped in
//! double quotes may contain commas and escaped (doubled) quotes, and
//! exports quote exactly the fields that need it. Embedded newlines inside
//! quoted fields remain unsupported (rejected with a clear error) — no
//! schema in this workspace produces them.

use crate::dataset::{Column, Dataset, Value};
use crate::schema::{Feature, FeatureKind, PrivilegedIf, ProtectedSpec, Schema};
use std::borrow::Cow;
use std::io::{self, BufRead, BufWriter, Seek, SeekFrom, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the CSV content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "csv io error: {e}"),
            Self::Parse { line, message } => write!(f, "csv parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Quotes `field` per RFC 4180 when it contains a separator or a quote
/// (doubling embedded quotes); plain fields pass through unchanged.
fn escape_field(field: &str) -> Cow<'_, str> {
    if field.contains(',') || field.contains('"') {
        Cow::Owned(format!("\"{}\"", field.replace('"', "\"\"")))
    } else {
        Cow::Borrowed(field)
    }
}

/// Splits one CSV record into fields, honoring RFC-4180 quoting: a field
/// wrapped in double quotes may contain commas, and a doubled quote inside
/// a quoted field is a literal `"`. Genuinely malformed rows — an
/// unterminated quote (which includes quoted embedded newlines, since this
/// reader is line-based), a bare quote inside an unquoted field, or junk
/// after a closing quote — stay hard errors with the offending line number.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let err = |message: String| CsvError::Parse {
        line: line_no,
        message,
    };
    let mut fields = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        let mut field = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next() {
                    Some('"') if chars.peek() == Some(&'"') => {
                        chars.next();
                        field.push('"');
                    }
                    Some('"') => break,
                    Some(c) => field.push(c),
                    None => {
                        return Err(err(
                            "unterminated quoted field (note: newlines inside quoted \
                             fields are not supported)"
                                .into(),
                        ))
                    }
                }
            }
            fields.push(field);
            match chars.next() {
                None => return Ok(fields),
                Some(',') => continue,
                Some(c) => {
                    return Err(err(format!(
                        "unexpected {c:?} after closing quote; a quoted field must be \
                         followed by a separator or the end of the record"
                    )))
                }
            }
        }
        loop {
            match chars.next() {
                Some(',') => break,
                Some('"') => {
                    return Err(err(
                        "bare '\"' inside an unquoted field; quote the whole field and \
                         double embedded quotes"
                            .into(),
                    ))
                }
                Some(c) => field.push(c),
                None => {
                    fields.push(field);
                    return Ok(fields);
                }
            }
        }
        fields.push(field);
    }
}

/// Writes the dataset as CSV: a header row of feature names plus the label
/// column, then one row per example. Fields containing separators or quotes
/// are RFC-4180-quoted, so [`read_csv`] / [`read_csv_infer`] round-trip any
/// level name without newlines.
pub fn write_csv<W: Write>(data: &Dataset, writer: W) -> Result<(), CsvError> {
    let mut out = BufWriter::new(writer);
    let schema = data.schema();
    let header: Vec<Cow<'_, str>> = schema
        .features()
        .iter()
        .map(|f| escape_field(&f.name))
        .chain(std::iter::once(escape_field(&schema.label_name)))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for r in 0..data.n_rows() {
        for f in 0..data.n_features() {
            match data.value(r, f) {
                Value::Level(l) => write!(out, "{}", escape_field(schema.level_name(f, l)))?,
                Value::Number(x) => write!(out, "{x}")?,
            }
            out.write_all(b",")?;
        }
        writeln!(out, "{}", data.labels()[r])?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a CSV produced by [`write_csv`] back into a [`Dataset`], validating
/// it against `schema` and attaching `protected`.
pub fn read_csv<R: BufRead>(
    reader: R,
    schema: &Schema,
    protected: ProtectedSpec,
) -> Result<Dataset, CsvError> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or(CsvError::Parse {
        line: 1,
        message: "missing header".into(),
    })??;
    let names: Vec<String> = split_record(&header, 1)?;
    let expected = schema.n_features() + 1;
    if names.len() != expected {
        return Err(CsvError::Parse {
            line: 1,
            message: format!("expected {expected} columns, found {}", names.len()),
        });
    }
    for (i, feat) in schema.features().iter().enumerate() {
        if names[i] != feat.name {
            return Err(CsvError::Parse {
                line: 1,
                message: format!("column {i} is {:?}, expected {:?}", names[i], feat.name),
            });
        }
    }

    let mut columns: Vec<Column> = schema
        .features()
        .iter()
        .map(|f| match f.kind {
            FeatureKind::Categorical { .. } => Column::Categorical(Vec::new()),
            FeatureKind::Numeric => Column::Numeric(Vec::new()),
        })
        .collect();
    let mut labels = Vec::new();

    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<String> = split_record(&line, line_no)?;
        if fields.len() != expected {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("expected {expected} fields, found {}", fields.len()),
            });
        }
        for (f, field) in fields[..schema.n_features()].iter().enumerate() {
            match &mut columns[f] {
                Column::Categorical(vals) => {
                    let lvl = schema
                        .level_index(f, field)
                        .ok_or_else(|| CsvError::Parse {
                            line: line_no,
                            message: format!("unknown level {field:?} for feature {f}"),
                        })?;
                    vals.push(lvl);
                }
                Column::Numeric(vals) => {
                    let x: f64 = field.parse().map_err(|_| CsvError::Parse {
                        line: line_no,
                        message: format!("invalid number {field:?}"),
                    })?;
                    vals.push(x);
                }
            }
        }
        let y: u8 = fields[schema.n_features()]
            .parse()
            .map_err(|_| CsvError::Parse {
                line: line_no,
                message: format!("invalid label {:?}", fields[schema.n_features()]),
            })?;
        labels.push(y);
    }

    Ok(Dataset::new(schema.clone(), columns, labels, protected))
}

/// Who counts as privileged when importing a foreign CSV with
/// [`read_csv_infer`] (the raw-string analogue of
/// [`PrivilegedIf`]).
#[derive(Debug, Clone, PartialEq)]
pub enum InferredPrivileged {
    /// Privileged iff the (categorical) protected column equals this value,
    /// e.g. `gender=F`.
    Equals(String),
    /// Privileged iff the (numeric) protected column is `>= cutoff`,
    /// e.g. `age>=45`.
    AtLeast(f64),
}

/// Parses a `col=level` / `col>=cutoff` privileged-group rule into the
/// column name and its [`InferredPrivileged`] half. The textual spec is the
/// one both the CLI's `--protected` flag and the serving daemon's session
/// uploads speak, so it lives here next to the inferring reader it feeds.
pub fn parse_protected_spec(spec: &str) -> Result<(&str, InferredPrivileged), String> {
    if let Some((column, cutoff)) = spec.split_once(">=") {
        let cutoff: f64 = cutoff
            .parse()
            .map_err(|_| format!("invalid cutoff in protected spec `{spec}`"))?;
        return Ok((column, InferredPrivileged::AtLeast(cutoff)));
    }
    if let Some((column, level)) = spec.split_once('=') {
        if column.is_empty() || level.is_empty() {
            return Err(format!("invalid protected spec `{spec}`"));
        }
        return Ok((column, InferredPrivileged::Equals(level.to_string())));
    }
    Err(format!(
        "protected spec must be `col=level` or `col>=cutoff`, got `{spec}`"
    ))
}

/// Reads an arbitrary CSV into a [`Dataset`], inferring the schema:
///
/// * a column whose every field parses as a finite `f64` becomes numeric;
/// * every other column becomes categorical, levels in first-appearance
///   order;
/// * `label_column` (by header name) must hold `0`/`1` and becomes the
///   label;
/// * `protected_column` + `privileged` become the [`ProtectedSpec`]: an
///   [`InferredPrivileged::Equals`] rule requires a categorical column with
///   that level present, an [`InferredPrivileged::AtLeast`] rule a numeric
///   one.
///
/// Rows must all have the header's field count; blank lines are skipped.
/// RFC-4180 quoting is supported: a quoted field may contain separators,
/// and doubled quotes escape a literal quote. Malformed quoting (an
/// unterminated or misplaced quote) is rejected with the offending line
/// number rather than silently mis-aligned.
///
/// This entry point **streams**: it reads the input twice in fixed-size
/// chunks (inference pass, then a materialization pass after a rewind — the
/// `Seek` bound) and never holds more than one chunk plus one record in
/// memory beyond the typed columns themselves, which are preallocated at the
/// row count the first pass established. Results — datasets *and* errors,
/// including which error wins when a file has several — are bit-identical
/// to the buffered reference path, [`read_csv_infer_buffered`]; the
/// `csv_streaming` property suite pins that equivalence.
pub fn read_csv_infer<R: BufRead + Seek>(
    reader: R,
    label_column: &str,
    protected_column: &str,
    privileged: &InferredPrivileged,
) -> Result<Dataset, CsvError> {
    read_csv_infer_chunked(
        reader,
        label_column,
        protected_column,
        privileged,
        DEFAULT_CHUNK_BYTES,
    )
}

/// Chunk size [`read_csv_infer`] streams with.
const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Resolves the label and protected columns in a header, with the same
/// errors whichever ingestion path runs.
fn resolve_required_columns(
    names: &[String],
    label_column: &str,
    protected_column: &str,
) -> Result<(usize, usize), CsvError> {
    let parse_err = |message: String| CsvError::Parse { line: 1, message };
    let label_idx = names
        .iter()
        .position(|n| n == label_column)
        .ok_or_else(|| parse_err(format!("label column {label_column:?} not in header")))?;
    let protected_idx = names
        .iter()
        .position(|n| n == protected_column)
        .ok_or_else(|| {
            parse_err(format!(
                "protected column {protected_column:?} not in header"
            ))
        })?;
    if protected_idx == label_idx {
        return Err(parse_err(
            "protected column cannot be the label column".into(),
        ));
    }
    Ok((label_idx, protected_idx))
}

/// Resolves the raw privileged rule against the protected feature's inferred
/// kind, with the same errors whichever ingestion path runs.
fn resolve_privileged_rule(
    privileged: &InferredPrivileged,
    kind: &FeatureKind,
    protected_column: &str,
) -> Result<PrivilegedIf, CsvError> {
    let parse_err = |message: String| CsvError::Parse { line: 1, message };
    match (privileged, kind) {
        (InferredPrivileged::Equals(level), FeatureKind::Categorical { levels }) => levels
            .iter()
            .position(|l| l == level)
            .map(|idx| PrivilegedIf::Level(idx as u32))
            .ok_or_else(|| {
                parse_err(format!(
                    "privileged level {level:?} never occurs in column {protected_column:?}"
                ))
            }),
        (InferredPrivileged::AtLeast(cutoff), FeatureKind::Numeric) => {
            Ok(PrivilegedIf::AtLeast(*cutoff))
        }
        (InferredPrivileged::Equals(_), FeatureKind::Numeric) => Err(parse_err(format!(
            "column {protected_column:?} is numeric; use `>=cutoff` syntax"
        ))),
        (InferredPrivileged::AtLeast(_), FeatureKind::Categorical { .. }) => Err(parse_err(
            format!("column {protected_column:?} is categorical; use `=level` syntax"),
        )),
    }
}

/// Buffered reference implementation of [`read_csv_infer`]: reads every row
/// into memory before inferring. Kept (public) as the bit-identity oracle
/// the streaming path is property-tested against, and for readers that
/// cannot rewind.
pub fn read_csv_infer_buffered<R: BufRead>(
    reader: R,
    label_column: &str,
    protected_column: &str,
    privileged: &InferredPrivileged,
) -> Result<Dataset, CsvError> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or(CsvError::Parse {
        line: 1,
        message: "missing header".into(),
    })??;
    let parse_err = |line: usize, message: String| CsvError::Parse { line, message };
    let names: Vec<String> = split_record(&header, 1)?;
    let n_cols = names.len();
    let (label_idx, protected_idx) =
        resolve_required_columns(&names, label_column, protected_column)?;

    // Pass 1: collect all fields (the inference needs a full column view),
    // remembering each row's source line for error reporting.
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row_lines: Vec<usize> = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<String> = split_record(&line, line_no)?;
        if fields.len() != n_cols {
            return Err(parse_err(
                line_no,
                format!("expected {n_cols} fields, found {}", fields.len()),
            ));
        }
        rows.push(fields);
        row_lines.push(line_no);
    }
    if rows.is_empty() {
        return Err(parse_err(2, "no data rows".into()));
    }

    // Pass 2: infer per-column kinds and materialize typed columns.
    let mut features: Vec<Feature> = Vec::new();
    let mut columns: Vec<Column> = Vec::new();
    // Maps CSV column index → feature index (the label column is skipped).
    let mut feature_of_col: Vec<Option<usize>> = vec![None; n_cols];
    for c in 0..n_cols {
        if c == label_idx {
            continue;
        }
        let numeric: Option<Vec<f64>> = rows
            .iter()
            .map(|r| r[c].parse::<f64>().ok().filter(|v| v.is_finite()))
            .collect();
        feature_of_col[c] = Some(features.len());
        match numeric {
            Some(values) => {
                features.push(Feature::numeric(names[c].clone()));
                columns.push(Column::Numeric(values));
            }
            None => {
                // Intern levels through a map so high-cardinality columns
                // stay O(rows), while `levels` keeps first-appearance order.
                let mut levels: Vec<String> = Vec::new();
                let mut level_of: std::collections::HashMap<&str, u32> =
                    std::collections::HashMap::new();
                let mut values: Vec<u32> = Vec::with_capacity(rows.len());
                for r in rows.iter() {
                    let idx = match level_of.get(r[c].as_str()) {
                        Some(&i) => i,
                        None => {
                            let i = levels.len() as u32;
                            levels.push(r[c].clone());
                            level_of.insert(r[c].as_str(), i);
                            i
                        }
                    };
                    values.push(idx);
                }
                features.push(Feature::categorical(names[c].clone(), levels));
                columns.push(Column::Categorical(values));
            }
        }
    }

    let mut labels: Vec<u8> = Vec::with_capacity(rows.len());
    for (i, r) in rows.iter().enumerate() {
        let y: u8 = r[label_idx]
            .parse()
            .ok()
            .filter(|&y| y <= 1)
            .ok_or_else(|| {
                parse_err(
                    row_lines[i],
                    format!("label {:?} must be 0 or 1", r[label_idx]),
                )
            })?;
        labels.push(y);
    }

    let protected_feature = feature_of_col[protected_idx].expect("not the label column");
    let privileged_rule = resolve_privileged_rule(
        privileged,
        &features[protected_feature].kind,
        protected_column,
    )?;

    Ok(Dataset::new(
        Schema::new(features, names[label_idx].clone()),
        columns,
        labels,
        ProtectedSpec {
            feature: protected_feature,
            privileged: privileged_rule,
        },
    ))
}

/// Assembles records (lines) out of fixed-size chunks read from `reader`,
/// reproducing `BufRead::lines` semantics exactly: records split on `\n`, a
/// trailing `\r` is stripped only from `\n`-terminated records (a final
/// unterminated line keeps its `\r`), and invalid UTF-8 surfaces as the same
/// `InvalidData` I/O error. Carry-over bytes are compacted once per refill,
/// so a record straddling any number of chunk boundaries costs amortized
/// O(record), not O(pending²).
struct RecordReader<R: BufRead> {
    reader: R,
    chunk: Vec<u8>,
    /// Unconsumed bytes: `pending[pos..]` is carried-over input.
    pending: Vec<u8>,
    pos: usize,
    /// `pending[pos..searched]` is known to contain no `\n`.
    searched: usize,
    eof: bool,
}

impl<R: BufRead> RecordReader<R> {
    fn new(reader: R, chunk_bytes: usize) -> Self {
        Self {
            reader,
            chunk: vec![0; chunk_bytes.max(1)],
            pending: Vec::new(),
            pos: 0,
            searched: 0,
            eof: false,
        }
    }

    /// The next record, or `None` at end of input.
    fn next_record(&mut self) -> Result<Option<String>, CsvError> {
        loop {
            if let Some(rel) = self.pending[self.searched..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let nl = self.searched + rel;
                let mut end = nl;
                if end > self.pos && self.pending[end - 1] == b'\r' {
                    end -= 1;
                }
                let record = utf8_record(&self.pending[self.pos..end])?;
                self.pos = nl + 1;
                self.searched = self.pos;
                return Ok(Some(record));
            }
            self.searched = self.pending.len();
            if self.eof {
                if self.pos >= self.pending.len() {
                    return Ok(None);
                }
                // Final unterminated line: no `\n` was stripped, so no `\r`
                // is either (mirrors `BufRead::lines`).
                let record = utf8_record(&self.pending[self.pos..])?;
                self.pos = self.pending.len();
                return Ok(Some(record));
            }
            self.pending.drain(..self.pos);
            self.searched -= self.pos;
            self.pos = 0;
            let n = self.reader.read(&mut self.chunk).map_err(CsvError::Io)?;
            if n == 0 {
                self.eof = true;
            } else {
                self.pending.extend_from_slice(&self.chunk[..n]);
            }
        }
    }
}

/// Decodes one record's bytes, failing exactly like `BufRead::lines` does on
/// invalid UTF-8.
fn utf8_record(bytes: &[u8]) -> Result<String, CsvError> {
    std::str::from_utf8(bytes).map(str::to_owned).map_err(|_| {
        CsvError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            "stream did not contain valid UTF-8",
        ))
    })
}

/// One streamed column being materialized in the second pass, its type fixed
/// by the first pass.
enum ColumnBuilder {
    Numeric(Vec<f64>),
    Categorical {
        levels: Vec<String>,
        level_of: std::collections::HashMap<String, u32>,
        values: Vec<u32>,
    },
}

/// Streaming implementation of [`read_csv_infer`] with an explicit chunk
/// size (exposed so tests can force chunk boundaries to straddle quoted
/// fields and multi-byte rows; `read_csv_infer` passes 64 KiB). Two passes:
///
/// 1. **Inference** — validate structure record by record (field counts,
///    quoting), keep one `numeric_ok` flag per column, count data rows.
/// 2. **Materialization** — rewind, then fill typed columns preallocated at
///    the first pass's row count; labels are validated in row order (the
///    first pass already proved structure, so the first label error is the
///    same one the buffered path reports).
///
/// `chunk_bytes` is clamped to at least 1; records may straddle any number
/// of chunks.
pub fn read_csv_infer_chunked<R: BufRead + Seek>(
    mut reader: R,
    label_column: &str,
    protected_column: &str,
    privileged: &InferredPrivileged,
    chunk_bytes: usize,
) -> Result<Dataset, CsvError> {
    let parse_err = |line: usize, message: String| CsvError::Parse { line, message };
    let mut records = RecordReader::new(&mut reader, chunk_bytes);
    let header = records.next_record()?.ok_or(CsvError::Parse {
        line: 1,
        message: "missing header".into(),
    })?;
    let names: Vec<String> = split_record(&header, 1)?;
    let n_cols = names.len();
    let (label_idx, protected_idx) =
        resolve_required_columns(&names, label_column, protected_column)?;

    // Pass 1: structure validation + per-column numeric inference + count.
    let mut numeric_ok = vec![true; n_cols];
    let mut n_rows = 0usize;
    let mut line_no = 1usize;
    while let Some(line) = records.next_record()? {
        line_no += 1;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<String> = split_record(&line, line_no)?;
        if fields.len() != n_cols {
            return Err(parse_err(
                line_no,
                format!("expected {n_cols} fields, found {}", fields.len()),
            ));
        }
        for (c, field) in fields.iter().enumerate() {
            if c != label_idx && numeric_ok[c] && !field.parse::<f64>().is_ok_and(|v| v.is_finite())
            {
                numeric_ok[c] = false;
            }
        }
        n_rows += 1;
    }
    if n_rows == 0 {
        return Err(parse_err(2, "no data rows".into()));
    }
    drop(records);

    // Pass 2: rewind and materialize into preallocated typed columns.
    reader.seek(SeekFrom::Start(0)).map_err(CsvError::Io)?;
    let mut records = RecordReader::new(&mut reader, chunk_bytes);
    let _header = records.next_record()?; // structure proven in pass 1
    let mut feature_of_col: Vec<Option<usize>> = vec![None; n_cols];
    let mut builders: Vec<ColumnBuilder> = Vec::with_capacity(n_cols - 1);
    for c in 0..n_cols {
        if c == label_idx {
            continue;
        }
        feature_of_col[c] = Some(builders.len());
        builders.push(if numeric_ok[c] {
            ColumnBuilder::Numeric(Vec::with_capacity(n_rows))
        } else {
            ColumnBuilder::Categorical {
                levels: Vec::new(),
                level_of: std::collections::HashMap::new(),
                values: Vec::with_capacity(n_rows),
            }
        });
    }
    let mut labels: Vec<u8> = Vec::with_capacity(n_rows);
    let mut line_no = 1usize;
    while let Some(line) = records.next_record()? {
        line_no += 1;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<String> = split_record(&line, line_no)?;
        for (c, field) in fields.iter().enumerate() {
            let Some(f) = feature_of_col[c] else {
                continue;
            };
            match &mut builders[f] {
                ColumnBuilder::Numeric(values) => {
                    // Pass 1 proved every field in this column numeric.
                    let v = field.parse::<f64>().map_err(|_| {
                        parse_err(line_no, format!("field {field:?} stopped parsing as f64"))
                    })?;
                    values.push(v);
                }
                ColumnBuilder::Categorical {
                    levels,
                    level_of,
                    values,
                } => {
                    let idx = match level_of.get(field.as_str()) {
                        Some(&i) => i,
                        None => {
                            let i = levels.len() as u32;
                            levels.push(field.clone());
                            level_of.insert(field.clone(), i);
                            i
                        }
                    };
                    values.push(idx);
                }
            }
        }
        let y: u8 = fields[label_idx]
            .parse()
            .ok()
            .filter(|&y| y <= 1)
            .ok_or_else(|| {
                parse_err(
                    line_no,
                    format!("label {:?} must be 0 or 1", fields[label_idx]),
                )
            })?;
        labels.push(y);
    }
    drop(records);

    let mut features: Vec<Feature> = Vec::with_capacity(builders.len());
    let mut columns: Vec<Column> = Vec::with_capacity(builders.len());
    for (c, name) in names.iter().enumerate() {
        let Some(f) = feature_of_col[c] else {
            continue;
        };
        match std::mem::replace(&mut builders[f], ColumnBuilder::Numeric(Vec::new())) {
            ColumnBuilder::Numeric(values) => {
                features.push(Feature::numeric(name.clone()));
                columns.push(Column::Numeric(values));
            }
            ColumnBuilder::Categorical { levels, values, .. } => {
                features.push(Feature::categorical(name.clone(), levels));
                columns.push(Column::Categorical(values));
            }
        }
    }

    let protected_feature = feature_of_col[protected_idx].expect("not the label column");
    let privileged_rule = resolve_privileged_rule(
        privileged,
        &features[protected_feature].kind,
        protected_column,
    )?;

    Ok(Dataset::new(
        Schema::new(features, names[label_idx].clone()),
        columns,
        labels,
        ProtectedSpec {
            feature: protected_feature,
            privileged: privileged_rule,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::german;
    use std::io::Cursor;

    #[test]
    fn round_trips_german() {
        let d = german(50, 1);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let back = read_csv(Cursor::new(&buf), d.schema(), d.protected().clone()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn header_has_label_column() {
        let d = german(2, 1);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let header = text.lines().next().unwrap();
        assert!(header.ends_with(",good_credit"), "{header}");
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn rejects_wrong_column_count() {
        let d = german(2, 1);
        let err = read_csv(
            Cursor::new(b"a,b\n" as &[u8]),
            d.schema(),
            d.protected().clone(),
        )
        .unwrap_err();
        match err {
            CsvError::Parse { line: 1, .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_level() {
        let d = german(1, 1);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // Corrupt the first data field (checking_status) to a bogus level.
        let lines: Vec<&str> = text.lines().collect();
        let mut fields: Vec<&str> = lines[1].split(',').collect();
        fields[0] = "BOGUS";
        let corrupted = fields.join(",");
        text = format!("{}\n{}\n", lines[0], corrupted);
        let err = read_csv(
            Cursor::new(text.as_bytes()),
            d.schema(),
            d.protected().clone(),
        )
        .unwrap_err();
        match err {
            CsvError::Parse { line: 2, message } => assert!(message.contains("BOGUS")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    const FOREIGN: &str = "\
age,gender,income,approved
25,F,31000,0
52,M,54000,1
33,M,47000,1
61,F,29000,0
";

    #[test]
    fn infer_detects_kinds_and_protected_level() {
        let d = read_csv_infer(
            Cursor::new(FOREIGN.as_bytes()),
            "approved",
            "gender",
            &InferredPrivileged::Equals("M".into()),
        )
        .unwrap();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.schema().label_name, "approved");
        assert!(matches!(d.schema().feature(0).kind, FeatureKind::Numeric));
        assert!(matches!(
            d.schema().feature(1).kind,
            FeatureKind::Categorical { .. }
        ));
        assert_eq!(d.labels(), &[0, 1, 1, 0]);
        // F appears first, M second → privileged level index 1.
        assert_eq!(d.privileged_mask(), vec![false, true, true, false]);
    }

    #[test]
    fn infer_supports_numeric_threshold_rule() {
        let d = read_csv_infer(
            Cursor::new(FOREIGN.as_bytes()),
            "approved",
            "age",
            &InferredPrivileged::AtLeast(45.0),
        )
        .unwrap();
        assert_eq!(d.privileged_mask(), vec![false, true, false, true]);
    }

    #[test]
    fn infer_round_trips_generated_exports() {
        // A german export re-imported with inference must keep every cell
        // (schemas differ in level order but values must agree).
        let original = german(40, 9);
        let mut buf = Vec::new();
        write_csv(&original, &mut buf).unwrap();
        let inferred = read_csv_infer(
            Cursor::new(&buf),
            "good_credit",
            "age",
            &InferredPrivileged::AtLeast(45.0),
        )
        .unwrap();
        assert_eq!(inferred.n_rows(), original.n_rows());
        assert_eq!(inferred.labels(), original.labels());
        assert_eq!(inferred.privileged_mask(), original.privileged_mask());
        for r in 0..original.n_rows() {
            assert_eq!(original.describe_row(r), inferred.describe_row(r));
        }
    }

    /// Every chunk size — down to one byte, so boundaries land inside
    /// quoted fields, multi-byte characters, and `\r\n` pairs — must yield
    /// exactly what the buffered reference yields.
    #[test]
    fn streaming_matches_buffered_at_every_tiny_chunk_size() {
        let csv = "name,née,approved\r\n\
                   \"Smith, John\",café,1\r\n\
                   \n\
                   \"He said \"\"hí\"\"\",naïve,0\n\
                   plain,über,1";
        let rule = InferredPrivileged::Equals("café".into());
        let buffered =
            read_csv_infer_buffered(Cursor::new(csv.as_bytes()), "approved", "née", &rule).unwrap();
        for chunk in [1usize, 2, 3, 5, 7, 16, 64, 4096] {
            let streamed = read_csv_infer_chunked(
                Cursor::new(csv.as_bytes()),
                "approved",
                "née",
                &rule,
                chunk,
            )
            .unwrap();
            assert_eq!(streamed, buffered, "chunk={chunk}");
        }
    }

    /// Errors must also match the buffered path — same variant, same line —
    /// at chunk sizes that split the offending record.
    #[test]
    fn streaming_reports_buffered_errors_at_tiny_chunks() {
        let cases: &[&str] = &[
            "a,y\n1,0\nonly_one_field\n", // field-count error, line 3
            "a,y\n\"unterminated,0\n",    // quoting error, line 2
            "a,y\n1,7\n",                 // label error, line 2
            "a,y\n",                      // no data rows
        ];
        for csv in cases {
            let want = format!(
                "{:?}",
                read_csv_infer_buffered(
                    Cursor::new(csv.as_bytes()),
                    "y",
                    "a",
                    &InferredPrivileged::AtLeast(0.0),
                )
                .unwrap_err()
            );
            for chunk in [1usize, 3, 8] {
                let got = format!(
                    "{:?}",
                    read_csv_infer_chunked(
                        Cursor::new(csv.as_bytes()),
                        "y",
                        "a",
                        &InferredPrivileged::AtLeast(0.0),
                        chunk,
                    )
                    .unwrap_err()
                );
                assert_eq!(got, want, "csv={csv:?} chunk={chunk}");
            }
        }
    }

    #[test]
    fn infer_rejects_bad_inputs() {
        let kind = |r: Result<Dataset, CsvError>| match r.unwrap_err() {
            CsvError::Parse { message, .. } => message,
            other => panic!("unexpected {other:?}"),
        };
        // Unknown label column.
        let msg = kind(read_csv_infer(
            Cursor::new(FOREIGN.as_bytes()),
            "nope",
            "gender",
            &InferredPrivileged::Equals("M".into()),
        ));
        assert!(msg.contains("label column"), "{msg}");
        // Mismatched rule kind.
        let msg = kind(read_csv_infer(
            Cursor::new(FOREIGN.as_bytes()),
            "approved",
            "age",
            &InferredPrivileged::Equals("45".into()),
        ));
        assert!(msg.contains("numeric"), "{msg}");
        // Non-binary label.
        let msg = kind(read_csv_infer(
            Cursor::new(b"a,y\n1,2\n" as &[u8]),
            "y",
            "a",
            &InferredPrivileged::AtLeast(0.0),
        ));
        assert!(msg.contains("must be 0 or 1"), "{msg}");
        // Empty file.
        let msg = kind(read_csv_infer(
            Cursor::new(b"a,y\n" as &[u8]),
            "y",
            "a",
            &InferredPrivileged::AtLeast(0.0),
        ));
        assert!(msg.contains("no data rows"), "{msg}");
        // Malformed quoting is a hard error, not a silent mis-split.
        let msg = kind(read_csv_infer(
            Cursor::new(b"name,y\n\"Smith, John,1\n" as &[u8]),
            "y",
            "name",
            &InferredPrivileged::Equals("Smith, John".into()),
        ));
        assert!(msg.contains("unterminated"), "{msg}");
        let msg = kind(read_csv_infer(
            Cursor::new(b"name,y\nSm\"ith,1\n" as &[u8]),
            "y",
            "name",
            &InferredPrivileged::Equals("x".into()),
        ));
        assert!(msg.contains("unquoted field"), "{msg}");
        let msg = kind(read_csv_infer(
            Cursor::new(b"name,y\n\"Smith\"x,1\n" as &[u8]),
            "y",
            "name",
            &InferredPrivileged::Equals("x".into()),
        ));
        assert!(msg.contains("after closing quote"), "{msg}");
    }

    #[test]
    fn quoted_separators_and_doubled_quotes_parse() {
        let text = "name,y\n\"Smith, John\",1\n\"says \"\"hi\"\"\",0\nplain,1\n";
        let d = read_csv_infer(
            Cursor::new(text.as_bytes()),
            "y",
            "name",
            &InferredPrivileged::Equals("Smith, John".into()),
        )
        .unwrap();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.labels(), &[1, 0, 1]);
        match d.schema().feature(0).kind {
            FeatureKind::Categorical { ref levels } => {
                assert_eq!(levels, &["Smith, John", "says \"hi\"", "plain"]);
            }
            _ => panic!("name must infer as categorical"),
        }
        assert_eq!(d.privileged_mask(), vec![true, false, false]);
    }

    #[test]
    fn quoting_round_trips_through_export_and_both_importers() {
        // Level names exercising every quoting rule: separators, embedded
        // quotes, and a plain level that must stay unquoted.
        let schema = Schema::new(
            vec![
                Feature::categorical("employer, name", ["Acme, Inc.", "\"Quoted\" LLC", "plain"]),
                Feature::numeric("age"),
            ],
            "approved",
        );
        let original = Dataset::new(
            schema,
            vec![
                Column::Categorical(vec![0, 1, 2, 0]),
                Column::Numeric(vec![30.0, 45.0, 52.0, 61.0]),
            ],
            vec![1, 0, 1, 0],
            ProtectedSpec {
                feature: 1,
                privileged: PrivilegedIf::AtLeast(45.0),
            },
        );
        let mut buf = Vec::new();
        write_csv(&original, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("\"Acme, Inc.\""), "{text}");
        assert!(text.contains("\"\"\"Quoted\"\" LLC\""), "{text}");
        // Schema-validated reader round-trips exactly.
        let back = read_csv(
            Cursor::new(&buf),
            original.schema(),
            original.protected().clone(),
        )
        .unwrap();
        assert_eq!(original, back);
        // Schema-inferring reader recovers every cell too.
        let inferred = read_csv_infer(
            Cursor::new(&buf),
            "approved",
            "age",
            &InferredPrivileged::AtLeast(45.0),
        )
        .unwrap();
        assert_eq!(inferred.n_rows(), original.n_rows());
        assert_eq!(inferred.labels(), original.labels());
        assert_eq!(inferred.privileged_mask(), original.privileged_mask());
        for r in 0..original.n_rows() {
            assert_eq!(original.describe_row(r), inferred.describe_row(r));
        }
    }

    #[test]
    fn skips_blank_lines() {
        let d = german(3, 2);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        let back = read_csv(
            Cursor::new(text.as_bytes()),
            d.schema(),
            d.protected().clone(),
        )
        .unwrap();
        assert_eq!(back.n_rows(), 3);
    }
}
