//! Feature schemas and protected-group specifications.

/// The kind of a feature, together with kind-specific metadata.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureKind {
    /// A categorical feature with a fixed set of named levels. Values are
    /// stored as indices into `levels`.
    Categorical {
        /// Human-readable level names, in index order.
        levels: Vec<String>,
    },
    /// A real-valued feature.
    Numeric,
}

impl FeatureKind {
    /// Convenience constructor for a categorical kind.
    pub fn categorical<S: Into<String>>(levels: impl IntoIterator<Item = S>) -> Self {
        Self::Categorical {
            levels: levels.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of levels for categorical kinds; `None` for numeric.
    pub fn n_levels(&self) -> Option<usize> {
        match self {
            Self::Categorical { levels } => Some(levels.len()),
            Self::Numeric => None,
        }
    }
}

/// A named feature.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    /// Column name (e.g. `"age"`).
    pub name: String,
    /// Feature kind and metadata.
    pub kind: FeatureKind,
}

impl Feature {
    /// Creates a categorical feature.
    pub fn categorical<S: Into<String>, L: Into<String>>(
        name: S,
        levels: impl IntoIterator<Item = L>,
    ) -> Self {
        Self {
            name: name.into(),
            kind: FeatureKind::categorical(levels),
        }
    }

    /// Creates a numeric feature.
    pub fn numeric<S: Into<String>>(name: S) -> Self {
        Self {
            name: name.into(),
            kind: FeatureKind::Numeric,
        }
    }
}

/// Defines the privileged group for fairness measurement.
///
/// The paper assumes a binary sensitive attribute `S` with `S = 1` privileged.
/// For categorical sensitive features the privileged group is a single level;
/// for numeric ones (e.g. `age` in German Credit) it is a threshold
/// `value >= cutoff`.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivilegedIf {
    /// Privileged iff the categorical feature equals this level index.
    Level(u32),
    /// Privileged iff the numeric feature is `>= cutoff`.
    AtLeast(f64),
}

/// Which feature is sensitive and who counts as privileged.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectedSpec {
    /// Index of the sensitive feature in the schema.
    pub feature: usize,
    /// Membership rule for the privileged group.
    pub privileged: PrivilegedIf,
}

/// A dataset schema: an ordered list of features plus label metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    features: Vec<Feature>,
    /// Name of the binary label column (1 = favorable outcome).
    pub label_name: String,
}

impl Schema {
    /// Builds a schema. Feature names must be unique and non-empty.
    ///
    /// # Panics
    /// On duplicate or empty feature names.
    pub fn new(features: Vec<Feature>, label_name: impl Into<String>) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for f in &features {
            assert!(!f.name.is_empty(), "schema: empty feature name");
            assert!(
                seen.insert(f.name.clone()),
                "schema: duplicate feature {:?}",
                f.name
            );
        }
        Self {
            features,
            label_name: label_name.into(),
        }
    }

    /// The features in declaration order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Looks up a feature index by name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }

    /// The feature at `idx`.
    ///
    /// # Panics
    /// If `idx` is out of range.
    pub fn feature(&self, idx: usize) -> &Feature {
        &self.features[idx]
    }

    /// Looks up a categorical level index by name for feature `idx`.
    pub fn level_index(&self, idx: usize, level: &str) -> Option<u32> {
        match &self.features[idx].kind {
            FeatureKind::Categorical { levels } => {
                levels.iter().position(|l| l == level).map(|p| p as u32)
            }
            FeatureKind::Numeric => None,
        }
    }

    /// The display name of categorical level `level` of feature `idx`, or a
    /// placeholder if out of range.
    pub fn level_name(&self, idx: usize, level: u32) -> &str {
        match &self.features[idx].kind {
            FeatureKind::Categorical { levels } => levels
                .get(level as usize)
                .map(String::as_str)
                .unwrap_or("<invalid-level>"),
            FeatureKind::Numeric => "<numeric>",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Feature::categorical("color", ["red", "green", "blue"]),
                Feature::numeric("age"),
            ],
            "label",
        )
    }

    #[test]
    fn lookup_by_name_and_level() {
        let s = schema();
        assert_eq!(s.feature_index("age"), Some(1));
        assert_eq!(s.feature_index("nope"), None);
        assert_eq!(s.level_index(0, "green"), Some(1));
        assert_eq!(s.level_index(0, "purple"), None);
        assert_eq!(s.level_index(1, "anything"), None, "numeric has no levels");
        assert_eq!(s.level_name(0, 2), "blue");
        assert_eq!(s.level_name(0, 99), "<invalid-level>");
    }

    #[test]
    fn n_levels() {
        let s = schema();
        assert_eq!(s.feature(0).kind.n_levels(), Some(3));
        assert_eq!(s.feature(1).kind.n_levels(), None);
    }

    #[test]
    #[should_panic(expected = "duplicate feature")]
    fn rejects_duplicate_names() {
        Schema::new(vec![Feature::numeric("x"), Feature::numeric("x")], "label");
    }

    #[test]
    #[should_panic(expected = "empty feature name")]
    fn rejects_empty_names() {
        Schema::new(vec![Feature::numeric("")], "label");
    }
}
