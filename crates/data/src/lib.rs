//! Tabular datasets for fairness debugging.
//!
//! This crate provides:
//!
//! * a column-oriented [`Dataset`] with a typed [`Schema`] (categorical and
//!   numeric features), binary labels, and a [`ProtectedSpec`] designating the
//!   privileged/protected groups;
//! * one-hot + z-score [`encode::Encoder`] producing the numeric design
//!   matrices the models train on, with enough layout metadata to *decode*
//!   and to *project* perturbed points back into the input domain (needed by
//!   update-based explanations, paper Eq. 19);
//! * quantile [`binning`] of numeric features for predicate generation;
//! * synthetic [`generators`] that mirror the schemas and the documented bias
//!   structure of the three datasets in the paper's evaluation (German
//!   Credit, Adult Income, NYPD Stop-Question-Frisk) — see DESIGN.md for the
//!   substitution rationale;
//! * an anchoring-style data-[`poison`]ing attack (paper §6.7);
//! * minimal CSV import/export ([`csv`]).

#![forbid(unsafe_code)]

pub mod binning;
pub mod csv;
pub mod dataset;
pub mod encode;
pub mod generators;
pub mod poison;
pub mod schema;

pub use dataset::{Column, Dataset, Value};
pub use encode::{Encoded, EncodedGroup, Encoder, EncodingLayout};
pub use schema::{Feature, FeatureKind, ProtectedSpec, Schema};
