//! Free functions on `&[f64]` slices: the handful of BLAS-1 style kernels the
//! rest of the workspace needs, written so the compiler can autovectorize.

/// Dot product. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `y += alpha * x` in place.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales `x` in place by `alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm (maximum absolute value); 0 for an empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Element-wise difference `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Returns `alpha * x` as a new vector.
pub fn scaled(alpha: f64, x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| alpha * v).collect()
}

/// Euclidean distance between two points.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "distance: length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc.sqrt()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance; 0 for slices with fewer than two elements.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn add_sub_scaled() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scaled(2.0, &[1.0, -1.0]), vec![2.0, -2.0]);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(distance(&a, &b), 5.0);
        assert_eq!(distance(&b, &a), 5.0);
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        // Population variance of {1,2,3,4} is 1.25.
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }
}
