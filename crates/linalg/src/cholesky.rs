//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The influence engine repeatedly solves `H x = b` against the (damped)
//! Hessian of the training loss. Factoring once and back-substituting per
//! right-hand side makes each subsequent solve O(p²).

use crate::matrix::Matrix;
use crate::vecops;

/// Error returned when a matrix is not positive definite (within tolerance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CholeskyError {
    /// The pivot index at which factorization failed.
    pub pivot: usize,
    /// The offending (non-positive) pivot value.
    pub value: f64,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} has value {:.3e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor stored densely (upper part zeroed).
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so slightly asymmetric inputs
    /// (e.g. Hessians assembled from finite differences) are tolerated.
    pub fn factor(a: &Matrix) -> Result<Self, CholeskyError> {
        assert_eq!(a.rows(), a.cols(), "cholesky: matrix not square");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(CholeskyError { pivot: j, value: d });
            }
            let diag = d.sqrt();
            l[(j, j)] = diag;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / diag;
            }
        }
        Ok(Self { l })
    }

    /// Factors `a + damping * I`, retrying with 10× larger damping until the
    /// factorization succeeds (up to `max_tries`). Returns the factor and the
    /// damping value actually used.
    ///
    /// This mirrors the standard practice for influence functions on
    /// non-convex models (the MLP), where the exact Hessian may be indefinite.
    pub fn factor_damped(
        a: &Matrix,
        mut damping: f64,
        max_tries: u32,
    ) -> Result<(Self, f64), CholeskyError> {
        assert!(damping >= 0.0, "factor_damped: damping must be >= 0");
        let mut last_err = CholeskyError {
            pivot: 0,
            value: 0.0,
        };
        for attempt in 0..max_tries {
            let mut damped = a.clone();
            damped.add_diagonal(damping);
            match Self::factor(&damped) {
                Ok(chol) => return Ok((chol, damping)),
                Err(e) => {
                    last_err = e;
                    // Escalate: start from a scale-aware floor, then grow.
                    let floor = 1e-8 * a.max_abs().max(1.0);
                    damping = if damping == 0.0 {
                        floor
                    } else {
                        damping * 10.0
                    };
                    let _ = attempt;
                }
            }
        }
        Err(last_err)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn factor_matrix(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// In-place solve: overwrites `b` with `A⁻¹ b`.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve: rhs dimension mismatch");
        // Forward substitution: L y = b.
        for i in 0..n {
            let mut s = b[i];
            let row = self.l.row(i);
            s -= vecops::dot(&row[..i], &b[..i]);
            b[i] = s / row[i];
        }
        // Backward substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = b[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * b[j];
            }
            b[i] = s / self.l[(i, i)];
        }
    }

    /// Solves for several right-hand sides given as rows of `b`
    /// (returns a matrix whose row `i` is `A⁻¹ bᵢ`).
    pub fn solve_rows(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.cols(), self.dim(), "solve_rows: dimension mismatch");
        let mut out = b.clone();
        for i in 0..out.rows() {
            self.solve_in_place(out.row_mut(i));
        }
        out
    }

    /// Log-determinant of `A` (sum of log of squared diagonal of `L`).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }

    /// Rescales the factored matrix: after `scale(alpha)` the factor
    /// represents `alpha * A` (the factor itself is scaled by `√alpha`).
    /// Used when a mean-form Hessian `(1/n)Σᵢ hᵢ` changes its row count:
    /// `A' = (n/n') A ± rank-1 terms`.
    ///
    /// # Panics
    /// If `alpha` is not strictly positive and finite.
    pub fn scale(&mut self, alpha: f64) {
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "scale: alpha must be positive and finite, got {alpha}"
        );
        self.l.scale(alpha.sqrt());
    }

    /// Rank-1 update: replaces the factored `A` with `A + x xᵀ` in O(p²)
    /// using Givens-style rotations on the columns of `L` (the classic
    /// LINPACK `dchud` scheme). Always succeeds — adding an outer product
    /// keeps a positive-definite matrix positive definite.
    ///
    /// # Panics
    /// If `x.len() != dim()`.
    pub fn rank_one_update(&mut self, x: &[f64]) {
        let n = self.dim();
        assert_eq!(x.len(), n, "rank_one_update: dimension mismatch");
        let mut work = x.to_vec();
        for j in 0..n {
            let ljj = self.l[(j, j)];
            let r = ljj.hypot(work[j]);
            let c = r / ljj;
            let s = work[j] / ljj;
            self.l[(j, j)] = r;
            for i in (j + 1)..n {
                let lij = (self.l[(i, j)] + s * work[i]) / c;
                work[i] = c * work[i] - s * lij;
                self.l[(i, j)] = lij;
            }
        }
    }

    /// Rank-1 downdate: replaces the factored `A` with `A − x xᵀ` in O(p²),
    /// the hyperbolic counterpart of [`Self::rank_one_update`]. Fails when
    /// the downdated matrix loses positive-definiteness (numerically: a
    /// pivot `Lⱼⱼ² − wⱼ²` that is not strictly positive), reporting the
    /// offending pivot like [`Self::factor`].
    ///
    /// On `Err` the factor is left partially modified and must be discarded
    /// (callers refactor from the full matrix — that is exactly the
    /// fallback path this error exists to trigger).
    ///
    /// # Panics
    /// If `x.len() != dim()`.
    pub fn rank_one_downdate(&mut self, x: &[f64]) -> Result<(), CholeskyError> {
        let n = self.dim();
        assert_eq!(x.len(), n, "rank_one_downdate: dimension mismatch");
        let mut work = x.to_vec();
        for j in 0..n {
            let ljj = self.l[(j, j)];
            let d = ljj * ljj - work[j] * work[j];
            if d <= 0.0 || !d.is_finite() {
                return Err(CholeskyError { pivot: j, value: d });
            }
            let r = d.sqrt();
            let c = r / ljj;
            let s = work[j] / ljj;
            self.l[(j, j)] = r;
            for i in (j + 1)..n {
                let lij = (self.l[(i, j)] - s * work[i]) / c;
                work[i] = c * work[i] - s * lij;
                self.l[(i, j)] = lij;
            }
        }
        Ok(())
    }

    /// Solves `(A + Uᵀ S U) x = b` without refactoring, via the Woodbury
    /// identity: `u` holds the k modification vectors as rows, `s` their
    /// (non-zero, possibly mixed-sign) weights. The k×k capacitance system
    /// `C = S⁻¹ + U A⁻¹ Uᵀ` is solved densely with partial pivoting —
    /// mixed signs make it indefinite, so Cholesky does not apply there.
    ///
    /// Cost: `k + 1` factor solves plus O(k²·p + k³); profitable while
    /// `k ≪ p` or the factor is hot and the modified matrix is not worth
    /// refactoring. Returns `None` when the capacitance matrix is singular
    /// (the modified matrix is singular or too ill-conditioned to trust) —
    /// callers should refactor the modified matrix instead.
    ///
    /// # Panics
    /// If dimensions are inconsistent or any weight is zero/non-finite
    /// (drop zero-weight vectors before calling).
    pub fn solve_rank_k_modified(&self, u: &[&[f64]], s: &[f64], b: &[f64]) -> Option<Vec<f64>> {
        let n = self.dim();
        let k = u.len();
        assert_eq!(s.len(), k, "solve_rank_k_modified: weight count mismatch");
        assert!(
            s.iter().all(|w| *w != 0.0 && w.is_finite()),
            "solve_rank_k_modified: weights must be non-zero and finite"
        );
        let mut x0 = b.to_vec();
        self.solve_in_place(&mut x0);
        if k == 0 {
            return Some(x0);
        }
        // Z rows: zⱼ = A⁻¹ uⱼ.
        let mut z = Matrix::zeros(k, n);
        for (j, uj) in u.iter().enumerate() {
            assert_eq!(uj.len(), n, "solve_rank_k_modified: vector length mismatch");
            let row = z.row_mut(j);
            row.copy_from_slice(uj);
            self.solve_in_place(row);
        }
        // Capacitance C = S⁻¹ + U A⁻¹ Uᵀ and right-hand side U x₀.
        let mut cap = Matrix::zeros(k, k);
        let mut rhs = vec![0.0; k];
        for i in 0..k {
            for j in 0..k {
                cap[(i, j)] = vecops::dot(u[i], z.row(j));
            }
            cap[(i, i)] += 1.0 / s[i];
            rhs[i] = vecops::dot(u[i], &x0);
        }
        let w = solve_dense(&mut cap, &mut rhs)?;
        // x = x₀ − Zᵀ w.
        for (j, &wj) in w.iter().enumerate() {
            vecops::axpy(-wj, z.row(j), &mut x0);
        }
        Some(x0)
    }
}

/// Solves the small dense system `M x = b` in place by Gaussian elimination
/// with partial pivoting (the capacitance matrix of a Woodbury solve is
/// symmetric but indefinite under mixed-sign weights, so Cholesky does not
/// apply). Returns `None` on a (near-)singular pivot.
fn solve_dense<'a>(m: &mut Matrix, b: &'a mut [f64]) -> Option<&'a [f64]> {
    let k = m.rows();
    assert_eq!(m.cols(), k, "solve_dense: matrix not square");
    assert_eq!(b.len(), k, "solve_dense: rhs dimension mismatch");
    let tiny = f64::EPSILON * m.max_abs().max(1.0) * k as f64;
    for col in 0..k {
        let pivot_row = (col..k)
            .max_by(|&a, &b| m[(a, col)].abs().total_cmp(&m[(b, col)].abs()))
            .expect("non-empty pivot range");
        let pivot = m[(pivot_row, col)];
        if !pivot.is_finite() || pivot.abs() <= tiny {
            return None;
        }
        if pivot_row != col {
            for j in 0..k {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            b.swap(col, pivot_row);
        }
        for row in (col + 1)..k {
            let f = m[(row, col)] / pivot;
            if f == 0.0 {
                continue;
            }
            for j in col..k {
                m[(row, j)] -= f * m[(col, j)];
            }
            b[row] -= f * b[col];
        }
    }
    for row in (0..k).rev() {
        let mut s = b[row];
        for j in (row + 1)..k {
            s -= m[(row, j)] * b[j];
        }
        b[row] = s / m[(row, row)];
    }
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        // A = Bᵀ B + I for a fixed B is SPD.
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.0, -1.0],
            vec![2.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ]);
        let mut a = b.transpose().matmul(&b);
        a.add_diagonal(1.0);
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_example();
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.factor_matrix();
        let recon = l.matmul(&l.transpose());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    (recon[(i, j)] - a[(i, j)]).abs() < 1e-10,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn solve_inverts() {
        let a = spd_example();
        let chol = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let x = chol.solve(&b);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn solve_rows_matches_individual_solves() {
        let a = spd_example();
        let chol = Cholesky::factor(&a).unwrap();
        let rhs = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 1.0]]);
        let solved = chol.solve_rows(&rhs);
        for i in 0..2 {
            let single = chol.solve(rhs.row(i));
            for j in 0..3 {
                assert!((solved[(i, j)] - single[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        let err = Cholesky::factor(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.value <= 0.0);
    }

    #[test]
    fn damped_factorization_recovers() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        let (chol, damping) = Cholesky::factor_damped(&a, 0.0, 20).unwrap();
        assert!(damping > 1.0, "needs damping > |min eigenvalue| = 1");
        // (A + damping I) x = b must hold.
        let b = vec![1.0, 1.0];
        let x = chol.solve(&b);
        let mut ad = a.clone();
        ad.add_diagonal(damping);
        let back = ad.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_solves_are_identity() {
        let chol = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(chol.solve(&b), b);
        assert!((chol.log_det()).abs() < 1e-12);
    }

    #[test]
    fn log_det_of_diagonal() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = 4.0;
        a[(1, 1)] = 9.0;
        let chol = Cholesky::factor(&a).unwrap();
        assert!((chol.log_det() - (4.0f64.ln() + 9.0f64.ln())).abs() < 1e-12);
    }

    fn assert_factors_same_matrix(chol: &Cholesky, a: &Matrix, tol: f64) {
        let l = chol.factor_matrix();
        let recon = l.matmul(&l.transpose());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    (recon[(i, j)] - a[(i, j)]).abs() < tol,
                    "mismatch at ({i},{j}): {} vs {}",
                    recon[(i, j)],
                    a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn rank_one_update_matches_refactorization() {
        let mut a = spd_example();
        let mut chol = Cholesky::factor(&a).unwrap();
        let x = [0.5, -1.5, 2.0];
        chol.rank_one_update(&x);
        a.rank1_update(1.0, &x);
        assert_factors_same_matrix(&chol, &a, 1e-10);
    }

    #[test]
    fn rank_one_downdate_matches_refactorization() {
        // Build A = base + x xᵀ, factor, downdate by x: must recover base.
        let base = spd_example();
        let x = [0.5, -1.5, 2.0];
        let mut a = base.clone();
        a.rank1_update(1.0, &x);
        let mut chol = Cholesky::factor(&a).unwrap();
        chol.rank_one_downdate(&x).unwrap();
        assert_factors_same_matrix(&chol, &base, 1e-9);
    }

    #[test]
    fn update_then_downdate_round_trips() {
        let a = spd_example();
        let mut chol = Cholesky::factor(&a).unwrap();
        let x = [1.0, 2.0, -0.5];
        chol.rank_one_update(&x);
        chol.rank_one_downdate(&x).unwrap();
        assert_factors_same_matrix(&chol, &a, 1e-9);
    }

    #[test]
    fn downdate_that_loses_definiteness_errors() {
        // A − x xᵀ with ‖x‖ big enough is indefinite.
        let a = spd_example();
        let mut chol = Cholesky::factor(&a).unwrap();
        let err = chol.rank_one_downdate(&[10.0, 0.0, 0.0]).unwrap_err();
        assert!(err.value <= 0.0 || !err.value.is_finite());
    }

    #[test]
    fn scale_rescales_the_factored_matrix() {
        let a = spd_example();
        let mut chol = Cholesky::factor(&a).unwrap();
        chol.scale(0.25);
        let mut scaled = a.clone();
        scaled.scale(0.25);
        assert_factors_same_matrix(&chol, &scaled, 1e-10);
        // Solves now invert 0.25·A.
        let b = vec![1.0, -1.0, 2.0];
        let x = chol.solve(&b);
        let back = scaled.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn woodbury_solve_matches_direct_factorization() {
        let a = spd_example();
        let chol = Cholesky::factor(&a).unwrap();
        // Mixed-sign modification: add one outer product, subtract another
        // (small enough to stay SPD).
        let u1 = [1.0, 0.5, -0.5];
        let u2 = [0.2, -0.3, 0.4];
        let s = [2.0, -0.5];
        let b = vec![1.0, 2.0, -1.0];
        let x = chol
            .solve_rank_k_modified(&[&u1, &u2], &s, &b)
            .expect("capacitance solvable");
        let mut modified = a.clone();
        modified.rank1_update(s[0], &u1);
        modified.rank1_update(s[1], &u2);
        let direct = Cholesky::factor(&modified).unwrap().solve(&b);
        for (u, v) in x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn woodbury_with_no_vectors_is_a_plain_solve() {
        let a = spd_example();
        let chol = Cholesky::factor(&a).unwrap();
        let b = vec![3.0, -1.0, 0.5];
        let x = chol.solve_rank_k_modified(&[], &[], &b).unwrap();
        assert_eq!(x, chol.solve(&b));
    }

    #[test]
    fn woodbury_detects_singular_modification() {
        // A − (A e₁)ᵀ-style modification that exactly cancels a direction:
        // subtracting the full diagonal entry of a 1×1 system makes the
        // modified matrix singular, so the capacitance pivot vanishes.
        let a = Matrix::from_rows(&[vec![2.0]]);
        let chol = Cholesky::factor(&a).unwrap();
        let u = [2.0f64.sqrt()];
        assert!(chol.solve_rank_k_modified(&[&u], &[-1.0], &[1.0]).is_none());
    }
}
