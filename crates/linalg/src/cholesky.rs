//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The influence engine repeatedly solves `H x = b` against the (damped)
//! Hessian of the training loss. Factoring once and back-substituting per
//! right-hand side makes each subsequent solve O(p²).

use crate::matrix::Matrix;
use crate::vecops;

/// Error returned when a matrix is not positive definite (within tolerance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CholeskyError {
    /// The pivot index at which factorization failed.
    pub pivot: usize,
    /// The offending (non-positive) pivot value.
    pub value: f64,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} has value {:.3e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor stored densely (upper part zeroed).
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so slightly asymmetric inputs
    /// (e.g. Hessians assembled from finite differences) are tolerated.
    pub fn factor(a: &Matrix) -> Result<Self, CholeskyError> {
        assert_eq!(a.rows(), a.cols(), "cholesky: matrix not square");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(CholeskyError { pivot: j, value: d });
            }
            let diag = d.sqrt();
            l[(j, j)] = diag;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / diag;
            }
        }
        Ok(Self { l })
    }

    /// Factors `a + damping * I`, retrying with 10× larger damping until the
    /// factorization succeeds (up to `max_tries`). Returns the factor and the
    /// damping value actually used.
    ///
    /// This mirrors the standard practice for influence functions on
    /// non-convex models (the MLP), where the exact Hessian may be indefinite.
    pub fn factor_damped(
        a: &Matrix,
        mut damping: f64,
        max_tries: u32,
    ) -> Result<(Self, f64), CholeskyError> {
        assert!(damping >= 0.0, "factor_damped: damping must be >= 0");
        let mut last_err = CholeskyError {
            pivot: 0,
            value: 0.0,
        };
        for attempt in 0..max_tries {
            let mut damped = a.clone();
            damped.add_diagonal(damping);
            match Self::factor(&damped) {
                Ok(chol) => return Ok((chol, damping)),
                Err(e) => {
                    last_err = e;
                    // Escalate: start from a scale-aware floor, then grow.
                    let floor = 1e-8 * a.max_abs().max(1.0);
                    damping = if damping == 0.0 {
                        floor
                    } else {
                        damping * 10.0
                    };
                    let _ = attempt;
                }
            }
        }
        Err(last_err)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn factor_matrix(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// In-place solve: overwrites `b` with `A⁻¹ b`.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve: rhs dimension mismatch");
        // Forward substitution: L y = b.
        for i in 0..n {
            let mut s = b[i];
            let row = self.l.row(i);
            s -= vecops::dot(&row[..i], &b[..i]);
            b[i] = s / row[i];
        }
        // Backward substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = b[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * b[j];
            }
            b[i] = s / self.l[(i, i)];
        }
    }

    /// Solves for several right-hand sides given as rows of `b`
    /// (returns a matrix whose row `i` is `A⁻¹ bᵢ`).
    pub fn solve_rows(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.cols(), self.dim(), "solve_rows: dimension mismatch");
        let mut out = b.clone();
        for i in 0..out.rows() {
            self.solve_in_place(out.row_mut(i));
        }
        out
    }

    /// Log-determinant of `A` (sum of log of squared diagonal of `L`).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        // A = Bᵀ B + I for a fixed B is SPD.
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.0, -1.0],
            vec![2.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ]);
        let mut a = b.transpose().matmul(&b);
        a.add_diagonal(1.0);
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_example();
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.factor_matrix();
        let recon = l.matmul(&l.transpose());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    (recon[(i, j)] - a[(i, j)]).abs() < 1e-10,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn solve_inverts() {
        let a = spd_example();
        let chol = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let x = chol.solve(&b);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn solve_rows_matches_individual_solves() {
        let a = spd_example();
        let chol = Cholesky::factor(&a).unwrap();
        let rhs = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 1.0]]);
        let solved = chol.solve_rows(&rhs);
        for i in 0..2 {
            let single = chol.solve(rhs.row(i));
            for j in 0..3 {
                assert!((solved[(i, j)] - single[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        let err = Cholesky::factor(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.value <= 0.0);
    }

    #[test]
    fn damped_factorization_recovers() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        let (chol, damping) = Cholesky::factor_damped(&a, 0.0, 20).unwrap();
        assert!(damping > 1.0, "needs damping > |min eigenvalue| = 1");
        // (A + damping I) x = b must hold.
        let b = vec![1.0, 1.0];
        let x = chol.solve(&b);
        let mut ad = a.clone();
        ad.add_diagonal(damping);
        let back = ad.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_solves_are_identity() {
        let chol = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(chol.solve(&b), b);
        assert!((chol.log_det()).abs() < 1e-12);
    }

    #[test]
    fn log_det_of_diagonal() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = 4.0;
        a[(1, 1)] = 9.0;
        let chol = Cholesky::factor(&a).unwrap();
        assert!((chol.log_det() - (4.0f64.ln() + 9.0f64.ln())).abs() < 1e-12);
    }
}
