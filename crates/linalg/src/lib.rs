//! Small dense linear algebra used by the Gopher reproduction.
//!
//! The models in this workspace have at most a few hundred parameters, so a
//! simple row-major dense [`Matrix`] with Cholesky factorization and conjugate
//! gradient is all the influence-function machinery needs. Everything is
//! `f64`, allocation-conscious, and thoroughly unit- and property-tested.

#![forbid(unsafe_code)]

mod cg;
mod cholesky;
mod matrix;
pub mod vecops;

pub use cg::{conjugate_gradient, CgOutcome};
pub use cholesky::{Cholesky, CholeskyError};
pub use matrix::Matrix;
