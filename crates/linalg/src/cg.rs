//! Conjugate gradient for matrix-free solves `A x = b` with symmetric
//! positive-definite `A` given only through matrix–vector products.
//!
//! Used by the influence engine when the Hessian is too large (or too
//! expensive) to materialize — e.g. Hessian-vector products of the MLP
//! obtained by finite differences of the analytic gradient.

use crate::vecops;

/// Result of a conjugate-gradient solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖₂`.
    pub residual_norm: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Solves `A x = b` by conjugate gradient.
///
/// * `apply` computes `y = A v` for a caller-chosen representation of `A`.
/// * `tol` is the relative residual target: stop when `‖r‖ ≤ tol · ‖b‖`.
/// * `max_iter` caps the iteration count (use `b.len()` for exact CG in exact
///   arithmetic; a small multiple is safer in floating point).
pub fn conjugate_gradient<F>(apply: F, b: &[f64], tol: f64, max_iter: usize) -> CgOutcome
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b - A·0
    let b_norm = vecops::norm2(b);
    if b_norm == 0.0 {
        return CgOutcome {
            x,
            iterations: 0,
            residual_norm: 0.0,
            converged: true,
        };
    }
    let target = tol * b_norm;
    let mut p = r.clone();
    let mut rsq = vecops::dot(&r, &r);
    let mut iterations = 0;
    while iterations < max_iter {
        if rsq.sqrt() <= target {
            break;
        }
        let ap = apply(&p);
        let denom = vecops::dot(&p, &ap);
        if denom <= 0.0 || !denom.is_finite() {
            // A is not positive definite along p (or numeric breakdown):
            // return the best estimate so far.
            break;
        }
        let alpha = rsq / denom;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        let rsq_new = vecops::dot(&r, &r);
        let beta = rsq_new / rsq;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rsq = rsq_new;
        iterations += 1;
    }
    let residual_norm = rsq.sqrt();
    CgOutcome {
        x,
        iterations,
        residual_norm,
        converged: residual_norm <= target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn spd() -> Matrix {
        let b = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![0.0, 3.0, 1.0],
            vec![1.0, 0.0, 1.0],
        ]);
        let mut a = b.transpose().matmul(&b);
        a.add_diagonal(0.5);
        a
    }

    #[test]
    fn solves_spd_system() {
        let a = spd();
        let b = vec![1.0, 2.0, 3.0];
        let out = conjugate_gradient(|v| a.matvec(v), &b, 1e-12, 100);
        assert!(out.converged, "CG did not converge: {out:?}");
        let back = a.matvec(&out.x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = spd();
        let out = conjugate_gradient(|v| a.matvec(v), &[0.0, 0.0, 0.0], 1e-10, 100);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.x, vec![0.0; 3]);
    }

    #[test]
    fn converges_in_at_most_n_iterations_for_identity() {
        let out = conjugate_gradient(|v| v.to_vec(), &[5.0, -3.0], 1e-14, 10);
        assert!(out.converged);
        assert!(out.iterations <= 2);
        assert!((out.x[0] - 5.0).abs() < 1e-12);
        assert!((out.x[1] + 3.0).abs() < 1e-12);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = spd();
        let out = conjugate_gradient(|v| a.matvec(v), &[1.0, 1.0, 1.0], 1e-16, 1);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn matches_cholesky_solution() {
        let a = spd();
        let b = vec![0.3, -1.2, 2.5];
        let chol = crate::Cholesky::factor(&a).unwrap();
        let exact = chol.solve(&b);
        let cg = conjugate_gradient(|v| a.matvec(v), &b, 1e-13, 200);
        for (u, v) in cg.x.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }
}
