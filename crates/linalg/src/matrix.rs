//! Row-major dense matrix.

use crate::vecops;

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// The storage layout makes "gradient matrix" usage cheap: row `i` of an
/// `n × p` matrix is the gradient of example `i`, and summing a subset of rows
/// is a sequential scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested rows (convenient in tests).
    ///
    /// # Panics
    /// If rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    /// If `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product writing into a caller-provided buffer
    /// (no allocation; `y.len()` must equal `rows`).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_into: x dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec_into: y dimension mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = vecops::dot(self.row(i), x);
        }
    }

    /// Transposed product `y = Aᵀ x`.
    ///
    /// # Panics
    /// If `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            vecops::axpy(xi, self.row(i), &mut y);
        }
        y
    }

    /// Dense matrix product `A * B`.
    ///
    /// # Panics
    /// If inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams through `other` rows, cache-friendly for
        // row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                vecops::axpy(a, brow, orow);
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Adds `alpha * x xᵀ` to this (square) matrix — the symmetric rank-1
    /// update used to accumulate Hessians of generalized linear models.
    ///
    /// # Panics
    /// If the matrix is not `x.len() × x.len()`.
    pub fn rank1_update(&mut self, alpha: f64, x: &[f64]) {
        assert_eq!(self.rows, x.len(), "rank1_update: dimension mismatch");
        assert_eq!(self.cols, x.len(), "rank1_update: matrix not square");
        for (i, &xi) in x.iter().enumerate() {
            let scaled = alpha * xi;
            if scaled == 0.0 {
                continue;
            }
            vecops::axpy(scaled, x, self.row_mut(i));
        }
    }

    /// Adds `alpha * I` in place (square matrices only).
    pub fn add_diagonal(&mut self, alpha: f64) {
        assert_eq!(self.rows, self.cols, "add_diagonal: matrix not square");
        for i in 0..self.rows {
            self[(i, i)] += alpha;
        }
    }

    /// Adds `alpha * other` element-wise in place.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_scaled: row mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled: col mismatch");
        vecops::axpy(alpha, &other.data, &mut self.data);
    }

    /// Multiplies every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Maximum absolute entry (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vecops::norm2(&self.data)
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ)/2`. Useful after accumulating a
    /// Hessian from finite differences, which can be slightly asymmetric.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize: matrix not square");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = a.matvec(&[1.0, -1.0]);
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let x = [1.0, 0.5, -2.0];
        let direct = a.matvec_t(&x);
        let via_transpose = a.transpose().matvec(&x);
        for (u, v) in direct.iter().zip(&via_transpose) {
            assert_close(*u, *v, 1e-12);
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
    }

    #[test]
    fn rank1_update_builds_outer_product() {
        let mut m = Matrix::zeros(3, 3);
        m.rank1_update(2.0, &[1.0, 0.0, -1.0]);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(0, 2)], -2.0);
        assert_eq!(m[(2, 0)], -2.0);
        assert_eq!(m[(2, 2)], 2.0);
        assert_eq!(m[(1, 1)], 0.0);
    }

    #[test]
    fn add_diagonal_and_scale() {
        let mut m = Matrix::identity(2);
        m.add_diagonal(1.0);
        m.scale(0.5);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn symmetrize_averages_off_diagonals() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 1.0]]);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "matvec: dimension mismatch")]
    fn matvec_rejects_wrong_length() {
        let a = Matrix::zeros(2, 3);
        let _ = a.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert_close(a.frobenius_norm(), 5.0, 1e-12);
        assert_close(a.max_abs(), 4.0, 1e-12);
        assert!(a.is_finite());
        let mut b = a.clone();
        b[(0, 0)] = f64::NAN;
        assert!(!b.is_finite());
    }
}
