//! Parallel == sequential bit-identity for the session query engine.
//!
//! The parallel execution layer (scorer fan-out, concurrent structural
//! groups, ground-truth retrain fan-out) must be invisible in the results:
//! `explain_batch` with `threads = N` answers every request mix exactly as
//! `threads = 1` does — same candidates, same responsibility bits, same
//! stats counts, same response order. The property test drives random
//! request mixes at both thread counts against identically-built sessions;
//! the timing test additionally checks the wall-clock win on multi-core
//! hosts.

use gopher_core::{ExplainRequest, ExplainSession, SessionBuilder};
use gopher_data::generators::german;
use gopher_fairness::FairnessMetric;
use gopher_influence::Estimator;
use gopher_models::LogisticRegression;
use gopher_prng::Rng;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

const DATA_SEED: u64 = 1405;

/// Serializes the timing test against the property test: libtest runs the
/// two in parallel by default, and a proptest case burning cores while the
/// 4-thread arm is being timed would sink the measured speedup. Each
/// proptest case takes the lock briefly; the timing test holds it for its
/// whole measurement.
static CPU_LOCK: Mutex<()> = Mutex::new(());

fn build_session(rows: usize, threads: usize) -> ExplainSession<LogisticRegression> {
    let mut rng = Rng::new(DATA_SEED);
    let (train, test) = german(rows, DATA_SEED).train_test_split(0.3, &mut rng);
    SessionBuilder::new().threads(threads).fit(
        |cols| LogisticRegression::new(cols, 1e-3),
        &train,
        &test,
    )
}

/// One warm session pair shared across property cases (sessions are `Sync`;
/// cache state cannot affect results, which is itself part of the property).
fn sessions() -> &'static (
    ExplainSession<LogisticRegression>,
    ExplainSession<LogisticRegression>,
) {
    static SESSIONS: OnceLock<(
        ExplainSession<LogisticRegression>,
        ExplainSession<LogisticRegression>,
    )> = OnceLock::new();
    SESSIONS.get_or_init(|| (build_session(300, 1), build_session(300, 4)))
}

/// Decodes one drawn request spec into an [`ExplainRequest`].
fn request_from(spec: (u64, u64, u64, u64)) -> ExplainRequest {
    let (metric, k, estimator, knobs) = spec;
    let metric = [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
        FairnessMetric::PredictiveParity,
        FairnessMetric::AverageOdds,
    ][metric as usize % 4];
    let estimator = [
        Estimator::SecondOrder,
        Estimator::FirstOrder,
        Estimator::NewtonStep,
    ][estimator as usize % 3];
    // `knobs` packs support choice, depth, and the (expensive, so rarer)
    // ground-truth flag.
    let support = [0.04, 0.06, 0.1][(knobs % 3) as usize];
    let depth = 2 + (knobs / 3) % 2; // 2 or 3
    let ground_truth = knobs % 8 == 0;
    ExplainRequest::default()
        .with_metric(metric)
        .with_k(1 + (k as usize % 3))
        .with_estimator(estimator)
        .with_support_threshold(support)
        .with_max_predicates(depth as usize)
        .with_ground_truth(ground_truth)
}

proptest! {
    #[test]
    fn explain_batch_is_thread_count_invariant(
        specs in proptest::collection::vec((0u64..4, 0u64..4, 0u64..3, 0u64..16), 1..6)
    ) {
        let requests: Vec<ExplainRequest> = specs.into_iter().map(request_from).collect();
        let _cpu = CPU_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (sequential, parallel) = sessions();
        let seq = sequential.explain_batch(&requests);
        let par = parallel.explain_batch(&requests);
        prop_assert_eq!(seq.len(), requests.len());
        prop_assert_eq!(seq.len(), par.len());
        for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
            // Response order: each response echoes its request.
            prop_assert_eq!(s.request.metric, requests[i].metric);
            prop_assert_eq!(p.request.metric, requests[i].metric);
            // Report scalars, bit for bit.
            prop_assert_eq!(s.report.metric, p.report.metric);
            prop_assert_eq!(s.report.base_bias.to_bits(), p.report.base_bias.to_bits());
            prop_assert_eq!(s.report.accuracy.to_bits(), p.report.accuracy.to_bits());
            // Search stats counts (durations are wall-clock and may differ,
            // but must be populated under fan-out — see below).
            prop_assert_eq!(s.report.stats.total_scored, p.report.stats.total_scored);
            prop_assert_eq!(s.report.stats.levels.len(), p.report.stats.levels.len());
            for (sl, pl) in s.report.stats.levels.iter().zip(&p.report.stats.levels) {
                prop_assert_eq!(
                    (sl.level, sl.generated, sl.kept),
                    (pl.level, pl.generated, pl.kept)
                );
                if pl.generated > 0 {
                    prop_assert!(
                        pl.duration > Duration::ZERO,
                        "fanned-out level {} lost its duration",
                        pl.level
                    );
                }
            }
            // Explanations: candidates, responsibilities, ground truth.
            prop_assert_eq!(s.report.explanations.len(), p.report.explanations.len());
            for (se, pe) in s.report.explanations.iter().zip(&p.report.explanations) {
                prop_assert_eq!(&se.pattern_text, &pe.pattern_text);
                prop_assert_eq!(se.candidate.pattern.ids(), pe.candidate.pattern.ids());
                prop_assert_eq!(se.support.to_bits(), pe.support.to_bits());
                prop_assert_eq!(
                    se.est_responsibility.to_bits(),
                    pe.est_responsibility.to_bits()
                );
                prop_assert_eq!(
                    se.candidate.interestingness.to_bits(),
                    pe.candidate.interestingness.to_bits()
                );
                prop_assert_eq!(
                    se.ground_truth_responsibility.map(f64::to_bits),
                    pe.ground_truth_responsibility.map(f64::to_bits)
                );
                prop_assert_eq!(
                    se.ground_truth_new_bias.map(f64::to_bits),
                    pe.ground_truth_new_bias.map(f64::to_bits)
                );
            }
        }
    }
}

/// The acceptance workload: an 8-request mixed-metric batch on German 1k,
/// ground truth on. Always asserts bit-identity between 4 worker threads
/// and the sequential path; on hosts with ≥ 4 cores it additionally asserts
/// the ≥2× wall-clock win (skipped on smaller machines, where the fan-out
/// has no hardware to use — the bench records the measured numbers either
/// way).
#[test]
fn mixed_metric_batch_of_8_is_identical_and_faster_with_4_threads() {
    let metrics = [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
        FairnessMetric::PredictiveParity,
        FairnessMetric::AverageOdds,
    ];
    let requests: Vec<ExplainRequest> = metrics
        .iter()
        .flat_map(|&m| {
            [
                ExplainRequest::default()
                    .with_metric(m)
                    .with_k(2)
                    .with_ground_truth(true),
                ExplainRequest::default()
                    .with_metric(m)
                    .with_estimator(Estimator::FirstOrder)
                    .with_k(2)
                    .with_ground_truth(true),
            ]
        })
        .collect();
    assert_eq!(requests.len(), 8);

    let _cpu = CPU_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sequential = build_session(1_000, 1);
    let parallel = build_session(1_000, 4);

    let t0 = Instant::now();
    let seq = sequential.explain_batch(&requests);
    let t_seq = t0.elapsed();
    let t0 = Instant::now();
    let par = parallel.explain_batch(&requests);
    let t_par = t0.elapsed();

    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.report.base_bias.to_bits(), p.report.base_bias.to_bits());
        assert_eq!(s.report.stats.total_scored, p.report.stats.total_scored);
        assert_eq!(s.report.explanations.len(), p.report.explanations.len());
        for (se, pe) in s.report.explanations.iter().zip(&p.report.explanations) {
            assert_eq!(se.pattern_text, pe.pattern_text);
            assert_eq!(
                se.est_responsibility.to_bits(),
                pe.est_responsibility.to_bits()
            );
            assert_eq!(
                se.ground_truth_responsibility.map(f64::to_bits),
                pe.ground_truth_responsibility.map(f64::to_bits)
            );
        }
    }

    let cores = gopher_par::available_parallelism();
    let speedup = t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9);
    println!(
        "8-request batch: sequential {:.1} ms, 4 threads {:.1} ms ({speedup:.2}x, {cores} cores)",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >=2x on a {cores}-core host, got {speedup:.2}x \
             (sequential {t_seq:?}, parallel {t_par:?})"
        );
    }
}
