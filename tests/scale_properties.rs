//! Scale property tier: every shortcut the SQF-scale engine takes must be
//! provably invisible in results.
//!
//! Three suites, one per shortcut:
//!
//! * **Streaming CSV** — `read_csv_infer` now streams in chunks with a
//!   rewind; random CSVs (quoted separators, doubled quotes, multi-byte
//!   UTF-8, blank lines, `\r\n`, missing trailing newline) at chunk sizes
//!   down to one byte must produce bit-identical datasets *and* errors to
//!   the buffered reference path.
//! * **Sampled-support prefilter** — sweeps with the prefilter on are
//!   bit-identical to sweeps with it off (candidates, coverages, supports,
//!   stats counts) at 1 and 4 threads, and an audit of the structural
//!   artifact proves every skipped merge was genuinely below `min_count`.
//! * **SIMD kernels** — the dispatched `and`/`and_count` agree with the
//!   public scalar reference kernels at universe lengths straddling both
//!   the 64-bit word and the 256-bit lane boundaries. (CI additionally runs
//!   the whole suite with `GOPHER_SIMD=scalar`, so the fallback kernels are
//!   the *dispatched* pair on at least one run even on AVX2 hosts.)

use gopher_data::csv::{
    read_csv_infer_buffered, read_csv_infer_chunked, CsvError, InferredPrivileged,
};
use gopher_data::generators::german;
use gopher_data::Dataset;
use gopher_patterns::lattice::{compute_candidates_multi, LatticeConfig};
use gopher_patterns::{
    generate_predicates, BitSet, Candidate, CoverageCache, PredicateIndex, PredicateTable, ScoreFn,
    SearchStats, SupportPrefilter, SweepStructure,
};
use gopher_prng::Rng;
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::{Arc, OnceLock};

// ------------------------------------------------------------ streaming CSV

/// Cell palettes. The "category" palette is deliberately hostile: embedded
/// separators, doubled quotes, multi-byte UTF-8 (so chunk boundaries can
/// split a character), empty fields.
const NUM_CELLS: &[&str] = &["1", "2.5", "-3", "1e3", "0.125", "NaN", "x", "7"];
const CAT_CELLS: &[&str] = &[
    "plain",
    "with,comma",
    "with\"quote",
    "café ü漢",
    "",
    "naïve",
    "a\"\"b",
    "two words",
];
/// Mostly valid labels; "2" exercises the error path (both readers must
/// report the same line).
const LABEL_CELLS: &[&str] = &["0", "1", "1", "0", "2"];

/// RFC-4180 escape, mirroring the exporter's rule: quote iff the field
/// contains a separator or a quote, doubling embedded quotes.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Builds a CSV from palette picks: columns `num,grp,y`, optional blank
/// lines, `\n` or `\r\n`, optional trailing newline.
fn build_csv(cells: &[usize], crlf: bool, trailing_newline: bool, blank_every: usize) -> String {
    let eol = if crlf { "\r\n" } else { "\n" };
    let mut out = String::from("num,grp,y");
    out.push_str(eol);
    for (row, pick) in cells.chunks_exact(3).enumerate() {
        if blank_every > 0 && row > 0 && row % blank_every == 0 {
            out.push_str(eol);
        }
        let num = NUM_CELLS[pick[0] % NUM_CELLS.len()];
        let grp = CAT_CELLS[pick[1] % CAT_CELLS.len()];
        let y = LABEL_CELLS[pick[2] % LABEL_CELLS.len()];
        out.push_str(&format!("{},{},{}{}", escape(num), escape(grp), y, eol));
    }
    if !trailing_newline {
        // Drop the final terminator so the last record exercises the
        // unterminated-line path (where `\r` must NOT be stripped).
        out.truncate(out.len() - eol.len());
    }
    out
}

/// Renders a result so `Err` cases compare too (same variant, line, text).
fn render(result: Result<Dataset, CsvError>) -> String {
    match result {
        Ok(d) => format!("{d:?}"),
        Err(e) => format!("err: {e:?}"),
    }
}

proptest! {
    /// Chunked streaming at any chunk size — boundaries forced inside
    /// quoted fields, multi-byte characters, and `\r\n` pairs — is
    /// bit-identical to the buffered reference, datasets and errors alike.
    #[test]
    fn streaming_csv_is_bit_identical_to_buffered(
        cells in proptest::collection::vec(0usize..8, 3..54),
        chunk in 1usize..40,
        crlf in 0u64..2,
        trailing in 0u64..2,
        blank_every in 0usize..4,
    ) {
        let cells = &cells[..cells.len() - cells.len() % 3];
        let csv = build_csv(cells, crlf == 1, trailing == 1, blank_every);
        let rule = InferredPrivileged::Equals("plain".into());
        let buffered = render(read_csv_infer_buffered(
            Cursor::new(csv.as_bytes()), "y", "grp", &rule,
        ));
        let streamed = render(read_csv_infer_chunked(
            Cursor::new(csv.as_bytes()), "y", "grp", &rule, chunk,
        ));
        // (On mismatch the rendered strings carry the full dataset/error, so
        // the failing case is reconstructible from the assertion output.)
        prop_assert_eq!(streamed, buffered);
    }
}

// ------------------------------------------------------- prefilter identity

/// One shared 300-row table (pattern structure is a pure function of the
/// data; each case builds fresh caches and artifacts).
fn table() -> &'static (Dataset, PredicateTable) {
    static TABLE: OnceLock<(Dataset, PredicateTable)> = OnceLock::new();
    TABLE.get_or_init(|| {
        let d = german(300, 1406);
        let table = generate_predicates(&d, 4);
        (d, table)
    })
}

/// A deterministic scorer (positive-label rate over the coverage).
fn make_scorer(labels: &[u8]) -> impl FnMut(&BitSet) -> f64 + '_ {
    move |cov: &BitSet| {
        let total = cov.count().max(1) as f64;
        cov.iter()
            .map(|r| labels[r as usize] as usize)
            .sum::<usize>() as f64
            / total
    }
}

/// Runs one staged sweep with fresh cache/index/artifact, optionally with a
/// prefilter attached, returning the results plus the artifact and the
/// coverage cache for auditing.
fn run_sweep(
    table: &PredicateTable,
    config: &LatticeConfig,
    labels: &[u8],
    threads: usize,
    prefilter: Option<Arc<SupportPrefilter>>,
) -> (
    Vec<(Vec<Candidate>, SearchStats)>,
    SweepStructure,
    CoverageCache,
) {
    let cache = CoverageCache::new();
    let index = PredicateIndex::build(table, &cache);
    let structure = SweepStructure::build_with_prefilter(&index, config, prefilter);
    let mut scorer = make_scorer(labels);
    let mut scorers: Vec<ScoreFn<'_>> = vec![Box::new(&mut scorer)];
    let results =
        compute_candidates_multi(table, &mut scorers, config, &cache, &structure, threads);
    (results, structure, cache)
}

/// The exact coverage count of a merged pattern, recomputed from scratch by
/// intersecting its predicates' table coverages — the audit oracle.
fn exact_count(table: &PredicateTable, ids: &[u16]) -> usize {
    let mut cov = table.coverage(ids[0]).clone();
    for &id in &ids[1..] {
        cov = cov.and(table.coverage(id));
    }
    cov.count()
}

proptest! {
    /// The acceptance property: sweeps with the sampled-support prefilter
    /// on are bit-identical to sweeps with it off — candidates, coverage
    /// bits, supports, responsibilities, stats counts, even coverage-cache
    /// traffic — at 1 and 4 threads; and every merge the prefilter skipped
    /// was genuinely below `min_count` (admissibility, audited against
    /// from-scratch intersections).
    #[test]
    fn prefilter_is_bit_identical_and_admissible(
        support_choice in 0usize..3,
        depth in 2usize..4,
        sample_rows in 1usize..512,
        threads_bit in 0usize..2,
    ) {
        let (d, table) = table();
        let labels = d.labels();
        let config = LatticeConfig {
            support_threshold: [0.08, 0.15, 0.25][support_choice],
            max_predicates: depth,
            prune_by_responsibility: false,
            max_level_candidates: None,
        };
        let threads = [1, 4][threads_bit];

        let (plain, _, plain_cache) = run_sweep(table, &config, labels, threads, None);
        let pf = Arc::new(SupportPrefilter::new(table.n_rows(), sample_rows));
        let (filtered, structure, filtered_cache) =
            run_sweep(table, &config, labels, threads, Some(Arc::clone(&pf)));

        // Bit-identity of results and stats.
        prop_assert_eq!(plain.len(), filtered.len());
        for ((pc, ps), (fc, fs)) in plain.iter().zip(&filtered) {
            prop_assert_eq!(pc.len(), fc.len());
            for (a, b) in pc.iter().zip(fc) {
                prop_assert_eq!(a.pattern.ids(), b.pattern.ids());
                prop_assert_eq!(a.coverage.as_ref(), b.coverage.as_ref());
                prop_assert_eq!(a.support.to_bits(), b.support.to_bits());
                prop_assert_eq!(a.responsibility.to_bits(), b.responsibility.to_bits());
                prop_assert_eq!(a.interestingness.to_bits(), b.interestingness.to_bits());
            }
            prop_assert_eq!(ps.total_scored, fs.total_scored);
            prop_assert_eq!(ps.levels.len(), fs.levels.len());
            for (pl, fl) in ps.levels.iter().zip(&fs.levels) {
                prop_assert_eq!(
                    (pl.level, pl.generated, pl.kept),
                    (fl.level, fl.generated, fl.kept)
                );
            }
        }
        // Failed merges never touch the coverage cache and supported ones
        // are never skipped, so even cache traffic matches exactly.
        prop_assert_eq!(plain_cache.stats().hits, filtered_cache.stats().hits);
        prop_assert_eq!(plain_cache.stats().misses, filtered_cache.stats().misses);

        // Admissibility audit: every skip was a genuinely unsupported merge.
        let mut inexact = 0u64;
        for (ids, record) in structure.merge_snapshot() {
            let truth = exact_count(table, &ids);
            if record.exact {
                prop_assert_eq!(record.count, truth);
            } else {
                inexact += 1;
                prop_assert!(record.count >= truth, "bound under-counts {:?}", ids);
                prop_assert!(record.count < structure.min_count());
                prop_assert!(truth < structure.min_count(), "supported merge skipped!");
                prop_assert!(record.coverage.is_none());
            }
        }
        prop_assert_eq!(pf.skips(), inexact);
        prop_assert!(pf.probes() >= pf.skips());
    }
}

// ------------------------------------------------------------- SIMD kernels

/// A random bitset over `len` rows with roughly `density`/8 fill.
fn random_bitset(rng: &mut Rng, len: usize, density: u64) -> BitSet {
    let mut s = BitSet::new(len);
    for i in 0..len {
        if rng.next_u64() % 8 < density {
            s.insert(i);
        }
    }
    s
}

proptest! {
    /// The dispatched kernels agree bit-for-bit with the public scalar
    /// references on random sets at random universe lengths.
    #[test]
    fn simd_and_scalar_kernels_agree(
        len in 1usize..1500,
        seed in 0u64..1_000_000,
        density_a in 1u64..8,
        density_b in 1u64..8,
    ) {
        let mut rng = Rng::new(seed);
        let a = random_bitset(&mut rng, len, density_a);
        let b = random_bitset(&mut rng, len, density_b);
        prop_assert_eq!(a.and_count(&b), a.and_count_scalar(&b));
        prop_assert_eq!(&a.and(&b), &a.and_scalar(&b));
        prop_assert_eq!(a.and(&b).count(), a.and_count(&b));
    }
}

/// Dense sets at every length straddling the 64-bit word and 256-bit SIMD
/// lane boundaries: one off-by-one in the vector stride or the scalar tail
/// shows up immediately.
#[test]
fn simd_kernels_agree_at_lane_and_word_boundaries() {
    let mut rng = Rng::new(0x51_3D);
    for base in [64usize, 128, 192, 256, 320, 512, 1024] {
        for len in [base - 1, base, base + 1] {
            let a = random_bitset(&mut rng, len, 5);
            let b = random_bitset(&mut rng, len, 5);
            assert_eq!(a.and_count(&b), a.and_count_scalar(&b), "len={len}");
            assert_eq!(a.and(&b), a.and_scalar(&b), "len={len}");
        }
    }
}

/// When the environment forces scalar dispatch (`GOPHER_SIMD=scalar`, as
/// one full CI test run sets), the process-wide backend must be scalar —
/// keeping the fallback pair covered as the *dispatched* kernels even on
/// hosts without AVX2 feature detection in play.
#[test]
fn forced_scalar_dispatch_is_respected() {
    if std::env::var("GOPHER_SIMD").is_ok_and(|v| v == "scalar") {
        assert_eq!(gopher_patterns::simd_backend(), "scalar");
    } else {
        // Unforced: whatever was dispatched must be a known backend.
        assert!(["avx2", "scalar"].contains(&gopher_patterns::simd_backend()));
    }
}
