//! Concurrent serving invariants, at the layer below HTTP.
//!
//! The daemon's whole design rests on two properties of the in-process
//! pieces: an [`ExplainSession`] answers concurrent `&self` callers
//! bit-identically to a sequential run, and the session registry's LRU
//! eviction can rip a session out from under live traffic without breaking
//! anyone (the `Arc` keeps evicted sessions alive for whoever already holds
//! them). These tests pin both without any sockets in the way.

use gopher_core::{ExplainRequest, ExplainSession, SessionBuilder};
use gopher_data::generators::german;
use gopher_fairness::FairnessMetric;
use gopher_influence::Estimator;
use gopher_json::Json;
use gopher_models::LogisticRegression;
use gopher_prng::Rng;
use gopher_serve::api;
use gopher_serve::batcher::Batcher;
use gopher_serve::registry::{build_session, SessionConfig, SessionEntry, SessionRegistry};
use std::sync::Arc;
use std::time::Duration;

const DATA_SEED: u64 = 2207;

fn session(rows: usize) -> ExplainSession<LogisticRegression> {
    let mut rng = Rng::new(DATA_SEED);
    let (train, test) = german(rows, DATA_SEED).train_test_split(0.3, &mut rng);
    SessionBuilder::new().fit(|cols| LogisticRegression::new(cols, 1e-3), &train, &test)
}

/// A mixed workload: four metrics, two support thresholds, two estimators.
fn workload() -> Vec<ExplainRequest> {
    let metrics = [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
        FairnessMetric::PredictiveParity,
        FairnessMetric::AverageOdds,
    ];
    let mut requests = Vec::new();
    for (i, &metric) in metrics.iter().enumerate() {
        for &tau in &[0.05, 0.12] {
            let mut request = ExplainRequest::default()
                .with_metric(metric)
                .with_ground_truth(false)
                .with_support_threshold(tau);
            if i % 2 == 0 {
                request = request.with_estimator(Estimator::FirstOrder);
            }
            requests.push(request);
        }
    }
    requests
}

/// Timing-free canonical form of a response, via the shared wire codec.
fn canonical(response: &gopher_core::ExplainResponse) -> Json {
    let mut json = api::explain_response_json(response);
    if let Json::Obj(ref mut fields) = json {
        fields.remove("query_ms");
        fields.remove("search_ms");
    }
    json
}

/// N threads hammering one session — every thread its own request mix —
/// must produce exactly the answers a sequential pass over a fresh session
/// produces, request for request.
#[test]
fn hammered_session_matches_sequential_bit_for_bit() {
    let requests = workload();
    let sequential_session = session(320);
    let sequential: Vec<Json> = requests
        .iter()
        .map(|r| canonical(&sequential_session.explain(r)))
        .collect();

    let shared = session(320);
    let answers: Vec<Vec<(usize, Json)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let shared = &shared;
                let requests = &requests;
                scope.spawn(move || {
                    // Each thread walks the workload from a different start,
                    // so cache states collide in every order.
                    (0..requests.len())
                        .map(|i| {
                            let idx = (i + t * 3) % requests.len();
                            (idx, canonical(&shared.explain(&requests[idx])))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for per_thread in answers {
        for (idx, answer) in per_thread {
            assert_eq!(
                answer, sequential[idx],
                "concurrent answer for request {idx} diverged from sequential"
            );
        }
    }
}

/// The micro-batcher is transparent: funneling the workload through a
/// coalescing [`Batcher`] from many threads changes nothing about the
/// answers, and the session-level counters prove batches actually formed.
#[test]
fn batched_answers_match_solo_answers() {
    let requests = workload();
    let reference = session(320);
    let expected: Vec<Json> = requests
        .iter()
        .map(|r| canonical(&reference.explain(r)))
        .collect();

    let shared = std::sync::RwLock::new(gopher_serve::AnySession::Lr(session(320)));
    let batcher = Batcher::new(Duration::from_millis(100), 16);
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .enumerate()
            .map(|(i, request)| {
                let shared = &shared;
                let batcher = &batcher;
                let expected = &expected;
                scope.spawn(move || {
                    let response = batcher.explain(shared, request.clone()).unwrap();
                    assert_eq!(
                        canonical(&response),
                        expected[i],
                        "batched answer {i} diverged"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let stats = gopher_par::read_recover(&shared).stats();
    assert_eq!(stats.requests_served, requests.len() as u64);
    assert!(
        stats.batches_served < stats.requests_served,
        "coalescing must form fewer batches than requests ({} vs {})",
        stats.batches_served,
        stats.requests_served
    );
}

/// LRU eviction racing live lookups and inserts: nothing panics, lookups
/// either hit (and keep the session alive through their `Arc`) or miss
/// cleanly, and the cap holds afterwards.
#[test]
fn registry_eviction_mid_traffic_is_panic_free() {
    let registry = Arc::new(SessionRegistry::new(2));
    let entry = |name: &str| {
        let config = SessionConfig::from_json(
            &gopher_json::parse(&format!(
                r#"{{"name":"{name}", "generator":"german", "rows":120, "seed":5}}"#
            ))
            .unwrap(),
        )
        .unwrap();
        let (session, rows) = build_session(&config).unwrap();
        Arc::new(SessionEntry {
            name: name.to_string(),
            model: "lr".into(),
            source: config.source_text(),
            rows,
            config: config.clone(),
            session: std::sync::RwLock::new(session),
            batcher: Batcher::new(Duration::ZERO, 4),
        })
    };
    registry.insert(entry("keep")).unwrap();

    std::thread::scope(|scope| {
        let lookups = {
            let registry = registry.clone();
            scope.spawn(move || {
                let request = ExplainRequest::default().with_ground_truth(false).with_k(1);
                let mut served = 0u32;
                for _ in 0..40 {
                    if let Some(entry) = registry.get("keep") {
                        // Hold the Arc across real work: eviction during
                        // this call must not be able to hurt us.
                        let _ = entry.batcher.explain(&entry.session, request.clone());
                        served += 1;
                    }
                }
                served
            })
        };
        let churn = {
            let registry = registry.clone();
            scope.spawn(move || {
                for i in 0..6 {
                    registry.insert(entry(&format!("churn-{i}"))).unwrap();
                }
            })
        };
        let served = lookups.join().unwrap();
        churn.join().unwrap();
        assert!(served > 0, "some lookups must land before eviction");
    });

    assert_eq!(registry.len(), 2, "the cap must hold after the churn");
    assert!(registry.evictions() >= 5);
}
