//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace.

use gopher_data::binning::Bins;
use gopher_data::schema::{Feature, PrivilegedIf, ProtectedSpec, Schema};
use gopher_data::{Column, Dataset, Encoder};
use gopher_linalg::{Cholesky, Matrix};
use gopher_patterns::{topk, BitSet, Candidate, Pattern};
use gopher_prng::Rng;
use proptest::prelude::*;

proptest! {
    // ---------------- BitSet --------------------------------------------

    #[test]
    fn bitset_roundtrip(indices in proptest::collection::btree_set(0u32..500, 0..60)) {
        let vec: Vec<u32> = indices.iter().copied().collect();
        let set = BitSet::from_indices(500, &vec);
        prop_assert_eq!(set.count(), vec.len());
        prop_assert_eq!(set.to_indices(), vec.clone());
        for &i in &vec {
            prop_assert!(set.contains(i as usize));
        }
    }

    #[test]
    fn bitset_intersection_matches_naive(
        a in proptest::collection::btree_set(0u32..300, 0..50),
        b in proptest::collection::btree_set(0u32..300, 0..50),
    ) {
        let sa = BitSet::from_indices(300, &a.iter().copied().collect::<Vec<_>>());
        let sb = BitSet::from_indices(300, &b.iter().copied().collect::<Vec<_>>());
        let naive: Vec<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(sa.and(&sb).to_indices(), naive.clone());
        prop_assert_eq!(sa.intersection_count(&sb), naive.len());
        // Commutativity.
        prop_assert_eq!(sa.and(&sb), sb.and(&sa));
    }

    /// Word-boundary edges: universes whose length is not a multiple of 64
    /// leave a partial final word, and off-by-one bugs in `and`/`count`/
    /// `from_indices` live exactly there. Lengths are drawn to straddle the
    /// word boundary (1..=130 covers 0, 1, and 2 full words ± slack).
    #[test]
    fn bitset_word_boundary_lengths(
        len in 1usize..131,
        seed_a in proptest::collection::vec(0u32..131, 0..40),
        seed_b in proptest::collection::vec(0u32..131, 0..40),
    ) {
        // Clamp draws into the universe, dedup + sort as from_indices expects.
        let clamp = |raw: &[u32]| -> Vec<u32> {
            let mut v: Vec<u32> = raw
                .iter()
                .map(|&i| i % len as u32)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let a = clamp(&seed_a);
        let b = clamp(&seed_b);
        let sa = BitSet::from_indices(len, &a);
        let sb = BitSet::from_indices(len, &b);
        prop_assert_eq!(sa.len(), len);
        prop_assert_eq!(sa.count(), a.len());
        prop_assert_eq!(sa.to_indices(), a.clone());
        // Membership is exact across the whole universe and beyond: the
        // boundary bit (len-1) belongs, everything past it is absent.
        for i in 0..len + 70 {
            prop_assert_eq!(sa.contains(i), a.binary_search(&(i as u32)).is_ok());
        }
        // Intersection agrees with the naive set intersection and never
        // conjures bits in the partial final word.
        let naive: Vec<u32> = a.iter().copied().filter(|i| b.contains(i)).collect();
        let and = sa.and(&sb);
        prop_assert_eq!(and.to_indices(), naive.clone());
        prop_assert_eq!(and.count(), naive.len());
        prop_assert_eq!(sa.intersection_count(&sb), naive.len());
        prop_assert_eq!(and.len(), len);
    }

    /// The fused kernel and the materialized path agree everywhere the
    /// 4-word unroll and a partial final word can interact: `and_count`
    /// (and its `intersection_count` alias) equals `and().count()` at
    /// universe lengths not divisible by 64, including lengths shorter
    /// than, equal to, and straddling the 256-bit unroll width.
    #[test]
    fn and_count_matches_materialized_and(
        len in 1usize..600,
        seed_a in proptest::collection::vec(0u32..600, 0..120),
        seed_b in proptest::collection::vec(0u32..600, 0..120),
    ) {
        let clamp = |raw: &[u32]| -> Vec<u32> {
            let mut v: Vec<u32> = raw.iter().map(|&i| i % len as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let sa = BitSet::from_indices(len, &clamp(&seed_a));
        let sb = BitSet::from_indices(len, &clamp(&seed_b));
        let materialized = sa.and(&sb).count();
        prop_assert_eq!(sa.and_count(&sb), materialized);
        prop_assert_eq!(sa.intersection_count(&sb), materialized);
        // Commutative, and exact against a dense complement too.
        prop_assert_eq!(sb.and_count(&sa), materialized);
        let full = BitSet::from_indices(len, &(0..len as u32).collect::<Vec<_>>());
        prop_assert_eq!(sa.and_count(&full), sa.count());
    }

    /// The documented out-of-range contract: `contains` answers `false` for
    /// any index past the universe, while `insert` (checked separately in
    /// the unit tests) panics.
    #[test]
    fn bitset_contains_is_total(len in 1usize..200, probe in 0usize..400) {
        let set = BitSet::from_indices(len, &[(len - 1) as u32]);
        if probe >= len {
            prop_assert!(!set.contains(probe));
        }
        prop_assert!(set.contains(len - 1));
    }

    // ---------------- Binning -------------------------------------------

    #[test]
    fn bins_partition_all_values(
        values in proptest::collection::vec(-1000.0f64..1000.0, 1..200),
        max_bins in 2usize..10,
    ) {
        let bins = Bins::quantile(&values, max_bins);
        prop_assert!(bins.n_bins() >= 1);
        prop_assert!(bins.n_bins() <= max_bins);
        // Thresholds strictly increasing.
        for w in bins.thresholds().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Every value falls in a valid bin, monotonically with the value.
        let mut pairs: Vec<(f64, usize)> =
            values.iter().map(|&v| (v, bins.bin_of(v))).collect();
        pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "bin index must be monotone in the value");
        }
        for (_, b) in pairs {
            prop_assert!(b < bins.n_bins());
        }
    }

    // ---------------- Pattern algebra ------------------------------------

    #[test]
    fn pattern_merge_is_symmetric_and_grows_by_one(
        a in proptest::collection::btree_set(0u16..30, 1..5),
        b in proptest::collection::btree_set(0u16..30, 1..5),
    ) {
        let pa = Pattern::from_ids(a.iter().copied().collect());
        let pb = Pattern::from_ids(b.iter().copied().collect());
        match (pa.merge(&pb), pb.merge(&pa)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.ids(), y.ids());
                prop_assert_eq!(x.len(), pa.len() + 1);
                // The merge contains both inputs.
                for id in pa.ids().iter().chain(pb.ids()) {
                    prop_assert!(x.ids().contains(id));
                }
            }
            (None, None) => {}
            _ => prop_assert!(false, "merge must be symmetric"),
        }
    }

    // ---------------- Encoder --------------------------------------------

    #[test]
    fn encoder_roundtrips_random_datasets(
        rows in proptest::collection::vec((0u32..3, -50.0f64..50.0, 0u32..2), 2..80),
    ) {
        let schema = Schema::new(
            vec![
                Feature::categorical("c", ["a", "b", "c"]),
                Feature::numeric("x"),
                Feature::categorical("g", ["p", "q"]),
            ],
            "y",
        );
        let labels: Vec<u8> = rows.iter().map(|(c, _, _)| (c % 2) as u8).collect();
        let data = Dataset::new(
            schema,
            vec![
                Column::Categorical(rows.iter().map(|r| r.0).collect()),
                Column::Numeric(rows.iter().map(|r| r.1).collect()),
                Column::Categorical(rows.iter().map(|r| r.2).collect()),
            ],
            labels,
            ProtectedSpec { feature: 2, privileged: PrivilegedIf::Level(0) },
        );
        let enc = Encoder::fit(&data);
        let e = enc.transform(&data);
        prop_assert_eq!(e.n_rows(), data.n_rows());
        for r in 0..data.n_rows() {
            let decoded = enc.decode_row(e.x.row(r));
            prop_assert_eq!(decoded[0].as_level(), data.value(r, 0).as_level());
            prop_assert!((decoded[1].as_number() - data.value(r, 1).as_number()).abs() < 1e-6);
            prop_assert_eq!(decoded[2].as_level(), data.value(r, 2).as_level());
        }
    }

    #[test]
    fn projection_is_idempotent(
        row in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        // Layout: 3 one-hot + 1 numeric + 2 one-hot (from the fit below).
        let schema = Schema::new(
            vec![
                Feature::categorical("c", ["a", "b", "c"]),
                Feature::numeric("x"),
                Feature::categorical("g", ["p", "q"]),
            ],
            "y",
        );
        let data = Dataset::new(
            schema,
            vec![
                Column::Categorical(vec![0, 1, 2, 0]),
                Column::Numeric(vec![-1.0, 0.0, 1.0, 2.0]),
                Column::Categorical(vec![0, 1, 0, 1]),
            ],
            vec![0, 1, 0, 1],
            ProtectedSpec { feature: 2, privileged: PrivilegedIf::Level(0) },
        );
        let enc = Encoder::fit(&data);
        let mut once = row.clone();
        enc.project_row(&mut once);
        let mut twice = once.clone();
        enc.project_row(&mut twice);
        prop_assert_eq!(once, twice);
    }

    // ---------------- Top-k selection ------------------------------------

    #[test]
    fn topk_is_diverse_and_sorted(
        seed in 0u64..5000,
        k in 1usize..6,
        threshold in 0.1f64..1.0,
    ) {
        // Random candidate pool.
        let mut rng = Rng::new(seed);
        let n_rows = 120;
        let candidates: Vec<Candidate> = (0..25u16)
            .map(|id| {
                let size = rng.range(5, 40);
                let rows: Vec<u32> =
                    rng.sample_indices(n_rows, size).into_iter().map(|r| r as u32).collect();
                let coverage = BitSet::from_indices(n_rows, &rows);
                let support = coverage.count() as f64 / n_rows as f64;
                let responsibility = rng.uniform_in(-0.2, 0.8);
                Candidate {
                    pattern: Pattern::singleton(id),
                    coverage: std::sync::Arc::new(coverage),
                    support,
                    responsibility,
                    interestingness: responsibility / support,
                }
            })
            .collect();
        let top = topk::top_k(&candidates, k, threshold);
        prop_assert!(top.len() <= k);
        // Sorted by interestingness.
        for w in top.windows(2) {
            prop_assert!(w[0].interestingness >= w[1].interestingness - 1e-12);
        }
        // Pairwise diversity.
        for (i, a) in top.iter().enumerate() {
            for b in &top[..i] {
                prop_assert!(topk::containment(a, b) < threshold);
            }
        }
    }

    // ---------------- Cholesky on random SPD matrices ---------------------

    #[test]
    fn cholesky_solves_random_spd_systems(seed in 0u64..2000) {
        let mut rng = Rng::new(seed);
        let n = rng.range(1, 8);
        // A = B Bᵀ + I is SPD for any B.
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = rng.normal();
            }
        }
        let mut a = b.matmul(&b.transpose());
        a.add_diagonal(1.0);
        let chol = Cholesky::factor(&a).expect("SPD by construction");
        let rhs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let x = chol.solve(&rhs);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&rhs) {
            prop_assert!((u - v).abs() < 1e-8, "residual too large: {} vs {}", u, v);
        }
    }

    // ---------------- PRNG sanity -----------------------------------------

    #[test]
    fn prng_range_stays_in_bounds(seed in 0u64..1000, lo in 0usize..50, width in 1usize..50) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            let v = rng.range(lo, lo + width);
            prop_assert!(v >= lo && v < lo + width);
        }
    }
}
