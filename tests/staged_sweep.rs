//! Acceptance tests for the staged lattice sweep engine: the parallel
//! structural phase must be invisible in results (bit-identical at any
//! thread count), the structure cache must make a warm session answering a
//! second metric bit-identical to a cold one without re-running the
//! structural phase, and on multi-core hosts the chunked structural pass
//! must actually be faster.

use gopher_core::{ExplainRequest, SessionBuilder};
use gopher_data::generators::german;
use gopher_fairness::FairnessMetric;
use gopher_models::LogisticRegression;
use gopher_patterns::lattice::{compute_candidates_multi, LatticeConfig};
use gopher_patterns::{
    generate_predicates, min_count_for, BitSet, Candidate, CoverageCache, PredicateIndex,
    PredicateTable, ScoreFn, SearchStats, SweepStructure,
};
use gopher_prng::Rng;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Serializes the timing test against the property test (PR-3 style): a
/// proptest case burning cores while the 4-thread arm is being timed would
/// sink the measured speedup.
static CPU_LOCK: Mutex<()> = Mutex::new(());

/// One shared 300-row table for the property cases (pattern structure is a
/// pure function of the data; each case builds fresh caches and artifacts).
fn table() -> &'static (gopher_data::Dataset, PredicateTable) {
    static TABLE: OnceLock<(gopher_data::Dataset, PredicateTable)> = OnceLock::new();
    TABLE.get_or_init(|| {
        let d = german(300, 1406);
        let table = generate_predicates(&d, 4);
        (d, table)
    })
}

/// Three deliberately different deterministic scorers, so frontiers diverge
/// and per-scorer pruning differs: positive-label rate, privileged rate,
/// and an alternating mix.
fn make_scorer<'a>(
    kind: u64,
    labels: &'a [u8],
    privileged: &'a [bool],
) -> impl FnMut(&BitSet) -> f64 + 'a {
    move |cov: &BitSet| {
        let total = cov.count().max(1) as f64;
        match kind % 3 {
            0 => {
                cov.iter()
                    .map(|r| labels[r as usize] as usize)
                    .sum::<usize>() as f64
                    / total
            }
            1 => {
                cov.iter()
                    .map(|r| privileged[r as usize] as usize)
                    .sum::<usize>() as f64
                    / total
            }
            _ => {
                cov.iter()
                    .map(|r| (labels[r as usize] == 1) as usize + privileged[r as usize] as usize)
                    .sum::<usize>() as f64
                    / (2.0 * total)
            }
        }
    }
}

/// Runs one staged multi-sweep with fresh cache/index/artifact and returns
/// each scorer's results.
fn run_sweep(
    table: &PredicateTable,
    config: &LatticeConfig,
    scorer_kinds: &[u64],
    labels: &[u8],
    privileged: &[bool],
    threads: usize,
) -> (Vec<(Vec<Candidate>, SearchStats)>, usize) {
    let cache = CoverageCache::new();
    let index = PredicateIndex::build(table, &cache);
    let structure = SweepStructure::build(&index, config);
    let mut scorer_fns: Vec<_> = scorer_kinds
        .iter()
        .map(|&k| make_scorer(k, labels, privileged))
        .collect();
    let mut scorers: Vec<ScoreFn<'_>> = scorer_fns
        .iter_mut()
        .map(|s| Box::new(s) as ScoreFn<'_>)
        .collect();
    let results =
        compute_candidates_multi(table, &mut scorers, config, &cache, &structure, threads);
    (results, structure.merges_resolved())
}

proptest! {
    /// The acceptance property: the structural phase at `threads = 4` is
    /// bit-identical to `threads = 1` — candidates, coverage bits, supports,
    /// responsibilities, stats counts, and per-scorer result order — across
    /// random structural configurations and scorer mixes.
    #[test]
    fn structural_phase_is_thread_count_invariant(
        support_choice in 0usize..3,
        depth in 2usize..4,
        prune_bit in 0u64..2,
        cap_choice in 0usize..3,
        kinds in proptest::collection::vec(0u64..3, 1..4),
    ) {
        let (d, table) = table();
        let labels = d.labels();
        let privileged = d.privileged_mask();
        // Unpruned deep lattices explode combinatorially, so the uncapped
        // prune-off arm keeps a higher support floor; the per-level cap arms
        // (which also exercise `truncate_level` under the staged engine)
        // may go lower.
        let cap = [None, Some(20), Some(40)][cap_choice];
        let support = if prune_bit == 0 && cap.is_none() {
            [0.08, 0.1, 0.15][support_choice]
        } else {
            [0.04, 0.06, 0.1][support_choice]
        };
        let config = LatticeConfig {
            support_threshold: support,
            max_predicates: depth,
            prune_by_responsibility: prune_bit == 1,
            max_level_candidates: cap,
        };
        let _cpu = CPU_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (serial, resolved_1) =
            run_sweep(table, &config, &kinds, labels, &privileged, 1);
        let (parallel, resolved_4) =
            run_sweep(table, &config, &kinds, labels, &privileged, 4);

        prop_assert_eq!(serial.len(), parallel.len());
        // Inline sweeps resolve merges lazily (own-frontier pairs only);
        // the parallel pre-pass resolves the union pair space — a superset
        // with identical values for every shared pattern.
        prop_assert!(resolved_4 >= resolved_1);
        for ((sc, ss), (pc, ps)) in serial.iter().zip(&parallel) {
            prop_assert_eq!(sc.len(), pc.len());
            for (a, b) in sc.iter().zip(pc) {
                prop_assert_eq!(a.pattern.ids(), b.pattern.ids());
                prop_assert_eq!(a.coverage.as_ref(), b.coverage.as_ref());
                prop_assert_eq!(a.support.to_bits(), b.support.to_bits());
                prop_assert_eq!(a.responsibility.to_bits(), b.responsibility.to_bits());
                prop_assert_eq!(a.interestingness.to_bits(), b.interestingness.to_bits());
            }
            prop_assert_eq!(ss.total_scored, ps.total_scored);
            prop_assert_eq!(ss.levels.len(), ps.levels.len());
            for (sl, pl) in ss.levels.iter().zip(&ps.levels) {
                prop_assert_eq!(
                    (sl.level, sl.generated, sl.kept),
                    (pl.level, pl.generated, pl.kept)
                );
            }
        }
    }
}

proptest! {
    /// The τ-monotone acceptance property: a [`SweepStructure`] re-filtered
    /// to a tighter support count is indistinguishable from one cold-built
    /// at that count — identical singles, and a bit-identical sweep that
    /// touches a fresh coverage cache not at all (every merge it enumerates
    /// was already resolved at the looser τ) — at 1 and 4 threads, across
    /// depths, pruning modes, and scorers.
    #[test]
    fn refiltered_view_sweeps_bit_identical_to_cold_build(
        pair_choice in 0usize..3,
        depth in 2usize..4,
        prune_bit in 0u64..2,
        kind in 0u64..3,
        thread_choice in 0usize..2,
    ) {
        let (d, table) = table();
        let labels = d.labels();
        let privileged = d.privileged_mask();
        let (tau_loose, tau_tight) = [(0.04, 0.08), (0.05, 0.12), (0.06, 0.2)][pair_choice];
        let threads = [1usize, 4][thread_choice];
        let loose_cfg = LatticeConfig {
            support_threshold: tau_loose,
            max_predicates: depth,
            prune_by_responsibility: prune_bit == 1,
            max_level_candidates: None,
        };
        let tight_cfg = LatticeConfig {
            support_threshold: tau_tight,
            ..loose_cfg.clone()
        };
        let _cpu = CPU_LOCK.lock().unwrap_or_else(|e| e.into_inner());

        let cache = CoverageCache::new();
        let index = PredicateIndex::build(table, &cache);
        let run = |config: &LatticeConfig, cache: &CoverageCache, structure: &SweepStructure| {
            let mut s = make_scorer(kind, labels, &privileged);
            let mut scorers: Vec<ScoreFn<'_>> = vec![Box::new(&mut s)];
            compute_candidates_multi(table, &mut scorers, config, cache, structure, threads)
                .pop()
                .unwrap()
        };
        // A sweep at the loose τ populates the source artifact.
        let loose_structure = SweepStructure::build(&index, &loose_cfg);
        run(&loose_cfg, &cache, &loose_structure);

        let view = loose_structure.refilter_view(min_count_for(tau_tight, d.n_rows()));
        let cold = SweepStructure::build(&index, &tight_cfg);

        // Identical singles (ids, counts, coverage bits)...
        prop_assert_eq!(view.min_count(), cold.min_count());
        prop_assert_eq!(view.singles().len(), cold.singles().len());
        for (v, c) in view.singles().iter().zip(cold.singles()) {
            prop_assert_eq!(v.id, c.id);
            prop_assert_eq!(v.count, c.count);
            prop_assert_eq!(v.coverage.as_ref(), c.coverage.as_ref());
        }

        // ... a bit-identical sweep, with the view's run never touching a
        // fresh coverage cache (zero intersections counted or materialized;
        // support is anti-monotone, so the tighter frontier is a subset of
        // the looser one and every merge it reaches is already resolved).
        let view_cache = CoverageCache::new();
        let (view_cands, view_stats) = run(&tight_cfg, &view_cache, &view);
        prop_assert_eq!(view_cache.stats().misses, 0);
        prop_assert_eq!(view_cache.stats().hits, 0);
        let (cold_cands, cold_stats) = run(&tight_cfg, &cache, &cold);
        prop_assert_eq!(view_cands.len(), cold_cands.len());
        for (a, b) in view_cands.iter().zip(&cold_cands) {
            prop_assert_eq!(a.pattern.ids(), b.pattern.ids());
            prop_assert_eq!(a.coverage.as_ref(), b.coverage.as_ref());
            prop_assert_eq!(a.support.to_bits(), b.support.to_bits());
            prop_assert_eq!(a.responsibility.to_bits(), b.responsibility.to_bits());
        }
        prop_assert_eq!(view_stats.total_scored, cold_stats.total_scored);
        prop_assert_eq!(view_stats.levels.len(), cold_stats.levels.len());
        for (v, c) in view_stats.levels.iter().zip(&cold_stats.levels) {
            prop_assert_eq!((v.level, v.generated, v.kept), (c.level, c.generated, c.kept));
        }

        // Every merge record the cold sweep resolved exists in the view
        // with the same support count and the same coverage presence/bits.
        for ids in cold.known_keys() {
            let c = cold.lookup(&ids).unwrap();
            let v = view.lookup(&ids);
            prop_assert!(v.is_some(), "cold-resolved merge missing from the view");
            let v = v.unwrap();
            prop_assert_eq!(v.count, c.count);
            prop_assert_eq!(v.coverage.is_some(), c.coverage.is_some());
            if let (Some(vc), Some(cc)) = (&v.coverage, &c.coverage) {
                prop_assert_eq!(vc.as_ref(), cc.as_ref());
            }
        }
    }
}

/// The warm-reuse acceptance property: a session that already swept one
/// metric answers a *different* metric bit-identically to a cold session —
/// and the structure-cache hit counter proves the structural phase was
/// reused rather than re-run.
#[test]
fn warm_second_metric_matches_cold_session_via_structure_cache() {
    let build = || {
        let mut rng = Rng::new(1407);
        let (train, test) = german(600, 1407).train_test_split(0.3, &mut rng);
        SessionBuilder::new().threads(1).fit(
            |cols| LogisticRegression::new(cols, 1e-3),
            &train,
            &test,
        )
    };
    let sp = ExplainRequest::default().with_ground_truth(false);
    let eo = ExplainRequest::default()
        .with_metric(FairnessMetric::EqualOpportunity)
        .with_ground_truth(false);

    let warm_session = build();
    let _ = warm_session.explain(&sp); // populates the structure cache
    let warm = warm_session.explain(&eo); // second metric, same structure
    let cold = build().explain(&eo);

    // Bit-identical reports.
    assert_eq!(
        warm.report.base_bias.to_bits(),
        cold.report.base_bias.to_bits()
    );
    assert_eq!(
        warm.report.stats.total_scored,
        cold.report.stats.total_scored
    );
    assert_eq!(
        warm.report.stats.levels.len(),
        cold.report.stats.levels.len()
    );
    for (w, c) in warm
        .report
        .stats
        .levels
        .iter()
        .zip(&cold.report.stats.levels)
    {
        assert_eq!(
            (w.level, w.generated, w.kept),
            (c.level, c.generated, c.kept)
        );
    }
    assert_eq!(
        warm.report.explanations.len(),
        cold.report.explanations.len()
    );
    assert!(!warm.report.explanations.is_empty());
    for (w, c) in warm
        .report
        .explanations
        .iter()
        .zip(&cold.report.explanations)
    {
        assert_eq!(w.pattern_text, c.pattern_text);
        assert_eq!(w.support.to_bits(), c.support.to_bits());
        assert_eq!(
            w.est_responsibility.to_bits(),
            c.est_responsibility.to_bits()
        );
        assert_eq!(
            w.candidate.interestingness.to_bits(),
            c.candidate.interestingness.to_bits()
        );
    }

    // The counters prove the reuse: two scored misses (distinct metrics),
    // one structural miss (first query), one structural hit (second query's
    // sweep resolved against the cached artifact instead of re-enumerating).
    let stats = warm_session.stats();
    assert_eq!(stats.sweep_misses, 2);
    assert_eq!(stats.structure_misses, 1);
    assert_eq!(stats.structure_hits, 1);
    assert_eq!(stats.structure_entries, 1);
}

/// The multi-core acceptance check (PR-3 style): a cold single-scorer sweep
/// over German at 10k rows must show a measured structural-pass speedup at
/// 4 threads on hosts with >= 4 cores. On smaller machines the arms
/// converge (the chunked pass degrades to the inline loop) and only
/// bit-identity is asserted; the `cold_sweep` bench records the numbers
/// either way.
#[test]
fn cold_structural_pass_speeds_up_on_multicore_hosts() {
    let d = german(10_000, 1408);
    let table = generate_predicates(&d, 4);
    let labels = d.labels().to_vec();
    let privileged = d.privileged_mask();
    // Support-only pruning and a deep lattice make the structural phase the
    // dominant cost — exactly the shape the chunked pass exists for.
    let config = LatticeConfig {
        support_threshold: 0.02,
        max_predicates: 3,
        prune_by_responsibility: false,
        max_level_candidates: None,
    };

    let _cpu = CPU_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let time_arm = |threads: usize| {
        let t0 = Instant::now();
        let (results, _) = run_sweep(&table, &config, &[0], &labels, &privileged, threads);
        let wall = t0.elapsed();
        let (candidates, stats) = results.into_iter().next().unwrap();
        (candidates, stats.structural_time(), wall)
    };
    // With a trivial scorer, the sweep's wall clock *is* the structural
    // work: at 1 thread it runs lazily inside the scoring pass (the
    // pre-pass is skipped — nothing to parallelize), at 4 threads it runs
    // in the chunked pre-pass, whose cost `structural_time` reports.
    let (serial_cands, _, serial_wall) = time_arm(1);
    let (parallel_cands, parallel_structural, parallel_wall) = time_arm(4);

    assert_eq!(serial_cands.len(), parallel_cands.len());
    for (a, b) in serial_cands.iter().zip(&parallel_cands) {
        assert_eq!(a.pattern.ids(), b.pattern.ids());
        assert_eq!(a.responsibility.to_bits(), b.responsibility.to_bits());
    }
    assert!(
        parallel_structural.as_nanos() > 0,
        "the 4-thread arm must report its structural-pass cost"
    );

    let cores = gopher_par::available_parallelism();
    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);
    println!(
        "10k-row cold sweep: 1 thread {:.1} ms, 4 threads {:.1} ms (of which structural \
         {:.1} ms) — {speedup:.2}x on {cores} cores",
        serial_wall.as_secs_f64() * 1e3,
        parallel_wall.as_secs_f64() * 1e3,
        parallel_structural.as_secs_f64() * 1e3
    );
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "expected >=1.5x cold-sweep speedup on a {cores}-core host, got \
             {speedup:.2}x (serial {serial_wall:?}, parallel {parallel_wall:?})"
        );
    }
}
