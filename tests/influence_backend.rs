//! Refactor-identity pins for the influence-backend trait split.
//!
//! The `InfluenceBackend` extraction must be invisible for the analytic
//! families: an `ExplainSession<LogisticRegression | LinearSvm | Mlp>`
//! routed through `HessianBackend` has to produce **bit-identical**
//! responsibilities, ground-truth retrains, and incremental updates to the
//! direct `InfluenceEngine`/`BiasInfluence` code path the session inlined
//! before the split. The `Forest` family rides the same session machinery
//! through `UnlearningBackend`, whose estimates are pinned against the
//! scratch-retrain oracle on German-1k instead (there is no pre-split
//! reference to be identical to).

use gopher_core::{ExplainRequest, SessionBuilder};
use gopher_data::generators::german;
use gopher_data::{Dataset, Encoder};
use gopher_influence::{
    BiasEval, BiasInfluence, HessianBackend, InfluenceBackend, InfluenceEngine, ModelFamily,
};
use gopher_models::{Differentiable, Forest, ForestConfig, LinearSvm, LogisticRegression, Mlp};
use gopher_prng::Rng;

fn split(n: usize, seed: u64) -> (Dataset, Dataset) {
    let mut rng = Rng::new(seed);
    german(n, seed).train_test_split(0.3, &mut rng)
}

/// Explains through the generic session (backend path), then recomputes
/// every reported number through the pre-split shape — `session.engine()` +
/// `BiasInfluence` — and demands `f64::to_bits` equality.
fn assert_hessian_family_bit_identical<M>(make: impl Fn(usize) -> M)
where
    M: ModelFamily<Backend = HessianBackend<M>> + Differentiable,
{
    let (train, test) = split(800, 41);
    let session = SessionBuilder::new().fit(&make, &train, &test);
    let req = ExplainRequest::default().with_k(3).with_ground_truth(true);
    let report = session.explain(&req).report;
    assert!(
        !report.explanations.is_empty(),
        "german must yield explanations"
    );

    // The session's encoded train/test are derived deterministically from
    // the raw datasets; refitting the encoder here reproduces them bit for
    // bit, so the direct path sees exactly the session's inputs.
    let encoder = Encoder::fit(&train);
    let enc_train = encoder.transform(&train);
    let enc_test = encoder.transform(&test);
    let bi = BiasInfluence::new(session.engine(), req.metric, &enc_test);
    for e in &report.explanations {
        let rows = e.candidate.coverage.to_indices();
        let direct = bi.responsibility(&enc_train, &rows, req.estimator, req.bias_eval);
        assert_eq!(
            e.est_responsibility.to_bits(),
            direct.to_bits(),
            "estimated responsibility drifted through the backend: {} vs {}",
            e.est_responsibility,
            direct
        );
        // Ground truth: the batched path (`ground_truth_models`) inside
        // `explain` must agree bit for bit with the single-subset oracle.
        let (gt, _) = session.ground_truth_responsibility(req.metric, &rows);
        let reported = e
            .ground_truth_responsibility
            .expect("ground truth requested");
        assert_eq!(
            reported.to_bits(),
            gt.to_bits(),
            "ground-truth responsibility drifted through the backend"
        );
    }
}

#[test]
fn lr_explanations_are_bit_identical_through_the_backend() {
    assert_hessian_family_bit_identical(|n| LogisticRegression::new(n, 1e-3));
}

#[test]
fn svm_explanations_are_bit_identical_through_the_backend() {
    assert_hessian_family_bit_identical(|n| LinearSvm::new(n, 1e-3));
}

#[test]
fn mlp_explanations_are_bit_identical_through_the_backend() {
    let seed_rng = Rng::new(77);
    assert_hessian_family_bit_identical(move |n| Mlp::new(n, 10, 1e-3, &mut seed_rng.clone()));
}

#[test]
fn lr_update_through_the_backend_matches_the_direct_engine_path() {
    let (train, test) = split(900, 43);
    let mut session =
        SessionBuilder::new().fit(|n| LogisticRegression::new(n, 1e-3), &train, &test);

    // Direct replica of the pre-split update path: a bare engine over the
    // same encoded data, fed the exact row deltas the session computes.
    let encoder = Encoder::fit(&train);
    let enc_train = encoder.transform(&train);
    let mut model = LogisticRegression::new(enc_train.n_cols(), 1e-3);
    gopher_models::train::fit_default(&mut model, &enc_train);
    let mut engine = InfluenceEngine::new(model, &enc_train, session.backend().config().clone());
    assert_eq!(
        session.model().params(),
        engine.model().params(),
        "replica must start from the session's exact parameters"
    );

    let removed = [3usize, 11, 42, 100, 101, 250, 333];
    let added = german(5, 99);
    let report = session.update(&removed, &added);
    assert_eq!(report.rows_removed, removed.len());

    let mut mask = vec![false; enc_train.n_rows()];
    for &r in &removed {
        mask[r] = true;
    }
    let new_train = enc_train.patched(&mask, &encoder.transform(&added));
    let keep = enc_train.n_rows() - removed.len();
    let removed_pairs: Vec<(&[f64], f64)> = removed
        .iter()
        .map(|&r| (enc_train.x.row(r), enc_train.y[r]))
        .collect();
    let added_pairs: Vec<(&[f64], f64)> = (keep..new_train.n_rows())
        .map(|r| (new_train.x.row(r), new_train.y[r]))
        .collect();
    let direct = engine.update(&new_train, &removed_pairs, &added_pairs);

    assert_eq!(report.engine.refactored, direct.refactored);
    assert_eq!(report.engine.full_rebuild, direct.full_rebuild);
    let session_bits: Vec<u64> = session
        .model()
        .params()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    let direct_bits: Vec<u64> = engine
        .model()
        .params()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    assert_eq!(
        session_bits, direct_bits,
        "updated parameters must be byte-equal through the backend"
    );
}

#[test]
fn forest_unlearning_sign_agrees_with_scratch_retrain_on_german_1k() {
    let (train, test) = split(1000, 29);
    let session =
        SessionBuilder::new().fit(|n| Forest::new(n, ForestConfig::default()), &train, &test);
    let mut req = ExplainRequest::default().with_k(5).with_ground_truth(true);
    // Hard bias is a step function of the forest's vote, so smooth re-eval
    // keeps small subsets from rounding to exactly zero change.
    req.bias_eval = BiasEval::ReEvalSmooth;
    let report = session.explain(&req).report;
    assert!(
        report.base_bias > 0.05,
        "german forest baseline must show bias, got {}",
        report.base_bias
    );
    assert!(!report.explanations.is_empty());

    // The acceptance bar: the leaf-level unlearning estimate points the
    // same way as the scratch-retrain oracle on at least 90% of the top-k
    // (agreeing-on-zero counts as agreement).
    let mut agree = 0usize;
    let mut total = 0usize;
    for e in &report.explanations {
        let gt = e
            .ground_truth_responsibility
            .expect("ground truth requested");
        total += 1;
        let same_sign = (e.est_responsibility >= 0.0) == (gt >= 0.0);
        let both_negligible = e.est_responsibility.abs() < 1e-9 && gt.abs() < 1e-9;
        if same_sign || both_negligible {
            agree += 1;
        }
    }
    assert!(
        agree * 10 >= total * 9,
        "unlearning estimate sign-agrees on {agree}/{total} top patterns (needs >= 90%)"
    );
}

#[test]
fn forest_update_is_exact_for_removals_and_rebuilds_for_additions() {
    let (train, test) = split(600, 57);
    let mut session =
        SessionBuilder::new().fit(|n| Forest::new(n, ForestConfig::default()), &train, &test);
    let empty = train.select_rows(&[]);

    // Removal-only delta: leaf-level unlearning, no rebuild. (Per-tree
    // exactness against a refit on the surviving bootstrap rows is pinned
    // by `gopher-models`' unit tests; bootstraps are frozen at fit, so a
    // scratch refit over the reduced dataset draws *different* bootstraps
    // and is intentionally not the comparison here.)
    let n_before = session.model().n_train_rows();
    let report = session.update(&[2, 30, 77], &empty);
    assert!(
        !report.engine.full_rebuild,
        "removal-only forest delta must take the exact unlearning path"
    );
    assert_eq!(session.model().n_train_rows(), n_before - 3);
    assert!(session.accuracy().is_finite());

    // Any addition: documented full-rebuild fallback.
    let report = session.update(&[], &german(4, 91));
    assert!(
        report.engine.full_rebuild,
        "additions must fall back to a full forest rebuild"
    );
}
