//! Incremental sessions under data change, end to end.
//!
//! [`ExplainSession::update`] patches a live session in place: the
//! influence engine takes a Woodbury/Cholesky delta path, predicate
//! coverages are patched bit-exactly, and the structural cache keeps
//! whatever artifacts survive the delta. The contract these tests pin:
//!
//! * post-update answers equal a cold rebuild on the updated data —
//!   pattern text and support **exactly** (the bitset layer is patched,
//!   not approximated), responsibilities within the engine's documented
//!   drift bound, base bias to float noise;
//! * the whole thing is thread-count invariant: the patched session
//!   answers bit-identically at 1 and 4 worker threads;
//! * surviving cached artifacts answer exactly like freshly recomputed
//!   ones;
//! * an adversarial delta (a fifth of the training set at once) trips the
//!   refactorization/retrain fallback and *still* matches the cold oracle.

use gopher_core::{ExplainRequest, ExplainSession, SessionBuilder};
use gopher_data::generators::german;
use gopher_fairness::FairnessMetric;
use gopher_json::Json;
use gopher_models::LogisticRegression;
use gopher_prng::Rng;
use gopher_serve::api;

const DATA_SEED: u64 = 2208;

fn build_session(rows: usize, threads: usize) -> ExplainSession<LogisticRegression> {
    let mut rng = Rng::new(DATA_SEED);
    let (train, test) = german(rows, DATA_SEED).train_test_split(0.3, &mut rng);
    SessionBuilder::new().threads(threads).fit(
        |cols| LogisticRegression::new(cols, 1e-3),
        &train,
        &test,
    )
}

/// A small mixed workload: two metrics, two support thresholds.
fn workload() -> Vec<ExplainRequest> {
    let mut requests = Vec::new();
    for &metric in &[
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
    ] {
        for &tau in &[0.05, 0.1] {
            requests.push(
                ExplainRequest::default()
                    .with_metric(metric)
                    .with_ground_truth(false)
                    .with_support_threshold(tau),
            );
        }
    }
    requests
}

/// Timing-free canonical form of a response, via the shared wire codec.
fn canonical(response: &gopher_core::ExplainResponse) -> Json {
    let mut json = api::explain_response_json(response);
    if let Json::Obj(ref mut fields) = json {
        fields.remove("query_ms");
        fields.remove("search_ms");
    }
    json
}

/// Patterns and supports exactly; responsibilities within the engine's
/// drift bound; base bias to float noise.
fn assert_matches(warm: &gopher_core::ExplainResponse, cold: &gopher_core::ExplainResponse) {
    assert!(
        (warm.report.base_bias - cold.report.base_bias).abs() <= 1e-6,
        "base bias diverged: {} vs {}",
        warm.report.base_bias,
        cold.report.base_bias
    );
    let a = &warm.report.explanations;
    let b = &cold.report.explanations;
    assert_eq!(a.len(), b.len(), "explanation counts diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.pattern_text, y.pattern_text, "pattern diverged");
        assert_eq!(x.support, y.support, "support must be bit-exact");
        let scale = x.est_responsibility.abs().max(y.est_responsibility.abs());
        assert!(
            (x.est_responsibility - y.est_responsibility).abs() <= 1e-2 * scale.max(1e-12),
            "responsibility for {} outside the drift bound: {} vs {}",
            x.pattern_text,
            x.est_responsibility,
            y.est_responsibility
        );
    }
}

/// A balanced single-row delta at every thread count: the incremental
/// engine path must hold, post-update answers must match a cold rebuild,
/// and the patched session must stay thread-count invariant bit for bit.
#[test]
fn update_matches_cold_rebuild_and_is_thread_invariant() {
    let requests = workload();
    let mut per_thread_answers: Vec<Vec<Json>> = Vec::new();
    for &threads in &[1usize, 4] {
        let mut session = build_session(4000, threads);
        // Warm the structural tier before the delta lands.
        session.explain_batch(&requests);
        let report = session.update(&[388], &german(1, 61));
        assert_eq!(report.rows_removed, 1);
        assert_eq!(report.rows_added, 1);
        assert!(
            !report.engine.fell_back(),
            "a balanced single-row delta at 2800 train rows must stay incremental \
             (threads={threads}): {:?}",
            report.engine
        );
        let warm = session.explain_batch(&requests);
        let cold = session.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3));
        let oracle = cold.explain_batch(&requests);
        for (w, o) in warm.iter().zip(&oracle) {
            assert_matches(w, o);
        }
        per_thread_answers.push(warm.iter().map(canonical).collect());
    }
    let [ref one, ref four] = per_thread_answers[..] else {
        unreachable!("two thread counts");
    };
    for (i, (a, b)) in one.iter().zip(four).enumerate() {
        assert_eq!(
            a, b,
            "post-update answer {i} diverged between 1 and 4 threads"
        );
    }
}

/// Artifacts that survive the delta answer exactly like a recompute: the
/// next explain after an update must hit the patched structure and return
/// the same thing a from-scratch session on the updated data returns.
#[test]
fn surviving_artifacts_equal_recomputed_ones() {
    let requests = workload();
    let mut session = build_session(1200, 1);
    session.explain_batch(&requests);
    let before = session.stats();
    assert!(
        before.structure_entries >= 1,
        "warm-up must cache structures"
    );

    let report = session.update(&[17], &german(1, 63));
    let stats = session.stats();
    assert_eq!(stats.updates_applied, 1);
    assert_eq!(
        report.artifacts_survived + report.artifacts_invalidated,
        before.structure_entries,
        "every cached artifact must be accounted survived or invalidated"
    );
    assert_eq!(stats.artifacts_survived, report.artifacts_survived as u64);
    assert_eq!(
        stats.artifacts_invalidated,
        report.artifacts_invalidated as u64
    );
    // The scored tier is a function of the moved model params: always wiped.
    assert_eq!(stats.sweep_entries, 0);

    let warm = session.explain_batch(&requests);
    let cold = session.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3));
    let oracle = cold.explain_batch(&requests);
    for (w, o) in warm.iter().zip(&oracle) {
        assert_matches(w, o);
    }
}

/// An adversarial delta — a fifth of the training set ripped out at once,
/// plus unbalanced additions — must trip the factor fallback (the drift
/// bound exists exactly for this) and still answer like the cold oracle.
#[test]
fn adversarial_delta_falls_back_and_still_matches() {
    let requests = workload();
    let mut session = build_session(600, 2);
    session.explain_batch(&requests);
    let n_train = session.train_raw().n_rows();
    let removed: Vec<usize> = (0..n_train / 5).map(|i| i * 5).collect();
    let report = session.update(&removed, &german(4, 65));
    assert!(
        report.engine.fell_back(),
        "removing 20% of training rows must not pass the drift/residual guards: {:?}",
        report.engine
    );
    assert_eq!(session.stats().factor_fallbacks, 1);

    let warm = session.explain_batch(&requests);
    let cold = session.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3));
    let oracle = cold.explain_batch(&requests);
    for (w, o) in warm.iter().zip(&oracle) {
        assert_matches(w, o);
    }
}
