//! Integration tests for estimator fidelity (the Figure 3 claims):
//! second-order influence tracks ground truth better than first-order for
//! cohesive subsets, and all estimators agree with retraining on direction.

use gopher_influence::{
    retrain_without, BiasEval, BiasInfluence, Estimator, InfluenceConfig, InfluenceEngine,
};
use gopher_repro::prelude::*;

struct Setup {
    train: Encoded,
    test: Encoded,
    engine: InfluenceEngine<LogisticRegression>,
}

fn setup(seed: u64) -> Setup {
    let mut rng = Rng::new(seed);
    let (train_raw, test_raw) = german(800, seed).train_test_split(0.3, &mut rng);
    let encoder = Encoder::fit(&train_raw);
    let train = encoder.transform(&train_raw);
    let test = encoder.transform(&test_raw);
    let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
    fit_default(&mut model, &train);
    let engine = InfluenceEngine::new(model, &train, InfluenceConfig::default());
    Setup {
        train,
        test,
        engine,
    }
}

/// Deterministic cohesive subsets: rows of one gender within an age band.
fn cohesive_subsets(train: &Encoded) -> Vec<Vec<u32>> {
    // The encoded German data has the privileged flag available; combine it
    // with the label to build four group-coherent subsets.
    let mut subsets = vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for r in 0..train.n_rows() {
        let g = usize::from(train.privileged[r]) * 2 + usize::from(train.y[r] == 1.0);
        subsets[g].push(r as u32);
    }
    // Truncate to at most 15% of the data each so the estimates stay in the
    // regime influence functions are designed for.
    let cap = train.n_rows() * 15 / 100;
    for s in &mut subsets {
        s.truncate(cap);
    }
    subsets.retain(|s| !s.is_empty());
    subsets
}

#[test]
fn estimators_match_ground_truth_sign_for_group_subsets() {
    let s = setup(301);
    let bi = BiasInfluence::new(&s.engine, FairnessMetric::StatisticalParity, &s.test);
    for rows in cohesive_subsets(&s.train) {
        let outcome = retrain_without(s.engine.model(), &s.train, &rows);
        let gt = gopher_fairness::smooth_bias(
            FairnessMetric::StatisticalParity,
            &outcome.model,
            &s.test,
        ) - bi.base_smooth_bias();
        if gt.abs() < 5e-3 {
            continue; // too small for a stable sign comparison
        }
        for est in [
            Estimator::FirstOrder,
            Estimator::SecondOrder,
            Estimator::NewtonStep,
        ] {
            let pred = bi.bias_change(&s.train, &rows, est, BiasEval::ChainRule);
            assert_eq!(
                pred.signum(),
                gt.signum(),
                "{}: predicted {pred}, ground truth {gt}",
                est.label()
            );
        }
    }
}

#[test]
fn second_order_beats_first_order_in_aggregate() {
    let s = setup(302);
    let bi = BiasInfluence::new(&s.engine, FairnessMetric::StatisticalParity, &s.test);
    let mut fo_err = 0.0;
    let mut so_err = 0.0;
    for rows in cohesive_subsets(&s.train) {
        let outcome = retrain_without(s.engine.model(), &s.train, &rows);
        let gt = gopher_fairness::smooth_bias(
            FairnessMetric::StatisticalParity,
            &outcome.model,
            &s.test,
        ) - bi.base_smooth_bias();
        fo_err += (bi.bias_change(&s.train, &rows, Estimator::FirstOrder, BiasEval::ChainRule)
            - gt)
            .abs();
        so_err += (bi.bias_change(&s.train, &rows, Estimator::SecondOrder, BiasEval::ChainRule)
            - gt)
            .abs();
    }
    assert!(
        so_err < fo_err,
        "second order total error {so_err} should beat first order {fo_err}"
    );
}

#[test]
fn newton_step_is_at_least_as_good_as_second_order() {
    let s = setup(303);
    let bi = BiasInfluence::new(&s.engine, FairnessMetric::StatisticalParity, &s.test);
    let mut so_err = 0.0;
    let mut newton_err = 0.0;
    for rows in cohesive_subsets(&s.train) {
        let outcome = retrain_without(s.engine.model(), &s.train, &rows);
        let gt = gopher_fairness::smooth_bias(
            FairnessMetric::StatisticalParity,
            &outcome.model,
            &s.test,
        ) - bi.base_smooth_bias();
        so_err += (bi.bias_change(&s.train, &rows, Estimator::SecondOrder, BiasEval::ChainRule)
            - gt)
            .abs();
        newton_err += (bi.bias_change(&s.train, &rows, Estimator::NewtonStep, BiasEval::ChainRule)
            - gt)
            .abs();
    }
    assert!(
        newton_err <= so_err * 1.05 + 1e-9,
        "newton {newton_err} should not be worse than second order {so_err}"
    );
}

#[test]
fn estimator_quality_holds_for_all_metrics() {
    let s = setup(304);
    for metric in FairnessMetric::ALL {
        let bi = BiasInfluence::new(&s.engine, metric, &s.test);
        if bi.base_bias().abs() < 1e-6 {
            continue;
        }
        for rows in cohesive_subsets(&s.train) {
            let outcome = retrain_without(s.engine.model(), &s.train, &rows);
            let gt = gopher_fairness::smooth_bias(metric, &outcome.model, &s.test)
                - bi.base_smooth_bias();
            let so = bi.bias_change(&s.train, &rows, Estimator::SecondOrder, BiasEval::ChainRule);
            // Within 50% relative error plus a small absolute tolerance.
            assert!(
                (so - gt).abs() <= 0.5 * gt.abs() + 0.02,
                "{metric}: estimate {so} vs ground truth {gt}"
            );
        }
    }
}

#[test]
fn responsibility_scales_with_subset_impact() {
    // A bigger bias-aligned subset must get (weakly) larger responsibility.
    let s = setup(305);
    let bi = BiasInfluence::new(&s.engine, FairnessMetric::StatisticalParity, &s.test);
    let aligned: Vec<u32> = (0..s.train.n_rows() as u32)
        .filter(|&r| s.train.privileged[r as usize] && s.train.y[r as usize] == 1.0)
        .collect();
    let small = &aligned[..aligned.len() / 4];
    let large = &aligned[..aligned.len() / 2];
    let r_small = bi.responsibility(&s.train, small, Estimator::SecondOrder, BiasEval::ChainRule);
    let r_large = bi.responsibility(&s.train, large, Estimator::SecondOrder, BiasEval::ChainRule);
    assert!(r_small > 0.0);
    assert!(
        r_large > r_small,
        "doubling the subset should increase responsibility"
    );
}
