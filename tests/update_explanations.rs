//! Integration tests for update-based explanations (paper Section 5).

use gopher_repro::prelude::*;

const METRIC: FairnessMetric = FairnessMetric::StatisticalParity;

fn build(seed: u64) -> ExplainSession<LogisticRegression> {
    let mut rng = Rng::new(seed);
    let (train, test) = german(800, seed).train_test_split(0.3, &mut rng);
    SessionBuilder::new().fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
    )
}

fn request() -> ExplainRequest {
    ExplainRequest::default().with_ground_truth(true)
}

#[test]
fn updates_are_produced_for_every_top_pattern() {
    let gopher = build(401);
    let (report, updates) = gopher.explain_with_updates(&request(), &UpdateConfig::default());
    assert_eq!(report.explanations.len(), updates.len());
    for (e, u) in report.explanations.iter().zip(&updates) {
        assert_eq!(e.pattern_text, u.pattern_text);
        assert_eq!(u.n_rows, e.candidate.coverage.count());
        assert_eq!(u.delta_encoded.len(), gopher.train().n_cols());
        assert!(u.delta_encoded.iter().all(|d| d.is_finite()));
    }
}

#[test]
fn update_estimate_never_worse_than_doing_nothing() {
    // δ = 0 yields an estimated bias change of ≈ 0 (only the tiny λθ term),
    // and the optimizer starts there — so the returned estimate must not be
    // meaningfully positive.
    let gopher = build(402);
    let (_, updates) = gopher.explain_with_updates(&request(), &UpdateConfig::default());
    for u in &updates {
        assert!(
            u.est_bias_change <= 1e-6,
            "{}: estimated bias change {} should be <= 0",
            u.pattern_text,
            u.est_bias_change
        );
    }
}

#[test]
fn at_least_one_update_genuinely_reduces_bias() {
    let gopher = build(403);
    let (_, updates) = gopher.explain_with_updates(&request(), &UpdateConfig::default());
    let best = updates
        .iter()
        .filter_map(|u| u.ground_truth_responsibility)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best > 0.05,
        "best update should cut ground-truth bias by >5%, got {best}"
    );
}

#[test]
fn updated_points_stay_in_domain() {
    let gopher = build(404);
    let report = gopher.explain(&request()).report;
    let top = &report.explanations[0];
    let update = gopher.update_explanation(&top.candidate, METRIC, &UpdateConfig::default());
    let rows = top.candidate.coverage.to_indices();
    let updated = gopher.apply_update(&rows, &update.delta_encoded);
    // Projection is idempotent exactly when the point is already valid.
    for &r in &rows {
        let mut row = updated.x.row(r as usize).to_vec();
        let before = row.clone();
        gopher.encoder().project_row(&mut row);
        assert_eq!(row, before, "updated row {r} escaped the input domain");
    }
    // Untouched rows must be bit-identical.
    let touched: std::collections::HashSet<u32> = rows.iter().copied().collect();
    for r in 0..gopher.train().n_rows() {
        if !touched.contains(&(r as u32)) {
            assert_eq!(updated.x.row(r), gopher.train().x.row(r));
        }
    }
}

#[test]
fn update_labels_are_preserved() {
    // Updates perturb features, never labels (the paper's updates repair
    // attributes; label repair is DUTI's problem, explicitly out of scope).
    let gopher = build(405);
    let report = gopher.explain(&request()).report;
    let top = &report.explanations[0];
    let update = gopher.update_explanation(&top.candidate, METRIC, &UpdateConfig::default());
    let rows = top.candidate.coverage.to_indices();
    let updated = gopher.apply_update(&rows, &update.delta_encoded);
    assert_eq!(updated.y, gopher.train().y);
    assert_eq!(updated.privileged, gopher.train().privileged);
}

#[test]
fn fewer_iterations_is_weaker_or_equal() {
    let gopher = build(406);
    let report = gopher.explain(&request()).report;
    let top = &report.explanations[0];
    let weak = gopher.update_explanation(
        &top.candidate,
        METRIC,
        &UpdateConfig {
            max_iters: 2,
            ground_truth: false,
            ..Default::default()
        },
    );
    let strong = gopher.update_explanation(
        &top.candidate,
        METRIC,
        &UpdateConfig {
            max_iters: 150,
            ground_truth: false,
            ..Default::default()
        },
    );
    assert!(
        strong.est_bias_change <= weak.est_bias_change + 1e-9,
        "more optimization must not hurt the surrogate objective: {} vs {}",
        strong.est_bias_change,
        weak.est_bias_change
    );
}
