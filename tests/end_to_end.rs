//! Workspace-spanning integration tests: the full explanation pipeline on
//! all three benchmark generators and both convex model families.

use gopher_repro::prelude::*;

fn run_pipeline(data: Dataset, seed: u64, k: usize) -> gopher_core::ExplanationReport {
    let mut rng = Rng::new(seed);
    let (train, test) = data.train_test_split(0.3, &mut rng);
    let session = SessionBuilder::new().fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
    );
    session
        .explain(&ExplainRequest::default().with_k(k).with_ground_truth(true))
        .report
}

#[test]
fn german_pipeline_reduces_bias() {
    let report = run_pipeline(german(800, 201), 201, 3);
    assert!(
        report.base_bias > 0.05,
        "baseline bias {}",
        report.base_bias
    );
    assert!(!report.explanations.is_empty());
    let top = &report.explanations[0];
    let gt = top
        .ground_truth_responsibility
        .expect("ground truth on by default");
    assert!(
        gt > 0.1,
        "top explanation should cut bias by >10%, got {gt}"
    );
}

#[test]
fn adult_pipeline_reduces_bias() {
    let report = run_pipeline(adult(1_500, 202), 202, 3);
    assert!(
        report.base_bias > 0.03,
        "baseline bias {}",
        report.base_bias
    );
    let top = &report.explanations[0];
    assert!(top.ground_truth_responsibility.unwrap() > 0.05);
}

#[test]
fn sqf_pipeline_reduces_bias() {
    let report = run_pipeline(sqf(2_000, 203), 203, 3);
    assert!(
        report.base_bias > 0.05,
        "baseline bias {}",
        report.base_bias
    );
    let top = &report.explanations[0];
    assert!(top.ground_truth_responsibility.unwrap() > 0.1);
}

#[test]
fn svm_pipeline_works_end_to_end() {
    let mut rng = Rng::new(204);
    let (train, test) = german(700, 204).train_test_split(0.3, &mut rng);
    let session = SessionBuilder::new().fit(|n_cols| LinearSvm::new(n_cols, 1e-3), &train, &test);
    let report = session
        .explain(&ExplainRequest::default().with_k(2).with_ground_truth(true))
        .report;
    assert!(report.base_bias > 0.0);
    assert!(!report.explanations.is_empty());
    assert!(report.explanations[0].ground_truth_responsibility.unwrap() > 0.0);
}

#[test]
fn every_metric_yields_explanations_on_german() {
    let mut rng = Rng::new(205);
    let (train, test) = german(800, 205).train_test_split(0.3, &mut rng);
    // One session serves all metrics — this is the batched query path.
    let session = SessionBuilder::new().fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
    );
    let requests: Vec<ExplainRequest> = FairnessMetric::ALL
        .into_iter()
        .map(|metric| {
            ExplainRequest::default()
                .with_metric(metric)
                .with_k(2)
                .with_ground_truth(false)
        })
        .collect();
    for (metric, response) in FairnessMetric::ALL
        .into_iter()
        .zip(session.explain_batch(&requests))
    {
        let report = response.report;
        assert!(
            report.base_bias > 0.0,
            "{metric}: bias {}",
            report.base_bias
        );
        assert!(!report.explanations.is_empty(), "{metric}: no explanations");
        for e in &report.explanations {
            assert!(
                e.est_responsibility > 0.0,
                "{metric}: non-positive responsibility"
            );
            assert!(e.support >= 0.05, "{metric}: support below τ");
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let a = run_pipeline(german(600, 206), 206, 3);
    let b = run_pipeline(german(600, 206), 206, 3);
    assert_eq!(a.base_bias, b.base_bias);
    assert_eq!(a.explanations.len(), b.explanations.len());
    for (x, y) in a.explanations.iter().zip(&b.explanations) {
        assert_eq!(x.pattern_text, y.pattern_text);
        assert_eq!(x.support, y.support);
        assert_eq!(x.est_responsibility, y.est_responsibility);
    }
}

#[test]
fn mlp_pipeline_works_on_small_data() {
    // Small MLP keeps the finite-difference Hessian assembly fast enough
    // for a debug-mode test.
    let mut rng = Rng::new(207);
    let (train, test) = german(350, 207).train_test_split(0.3, &mut rng);
    let mut init_rng = Rng::new(208);
    let session = SessionBuilder::new().fit(
        |n_cols| Mlp::new(n_cols, 3, 1e-2, &mut init_rng),
        &train,
        &test,
    );
    let report = session
        .explain(
            &ExplainRequest::default()
                .with_k(2)
                .with_ground_truth(false)
                .with_max_predicates(2),
        )
        .report;
    assert!(report.base_bias.abs() > 0.0);
    assert!(!report.explanations.is_empty());
}

#[test]
fn report_supports_and_coverage_are_consistent() {
    let report = run_pipeline(german(600, 209), 209, 3);
    for e in &report.explanations {
        let n = e.candidate.coverage.len();
        let count = e.candidate.coverage.count();
        assert!((e.support - count as f64 / n as f64).abs() < 1e-12);
        assert!(
            (e.candidate.interestingness - e.est_responsibility / e.support).abs() < 1e-9,
            "interestingness must be responsibility / support"
        );
    }
}
