//! Property-based tests on dataset operations and fairness-metric edge
//! cases that the unit tests don't reach.

use gopher_data::generators::german;
use gopher_fairness::{bias, bias_gradient, smooth_bias, FairnessMetric};
use gopher_models::{Differentiable, LogisticRegression, Model};
use gopher_prng::Rng;
use gopher_repro::prelude::{Encoder, SessionBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn train_test_split_partitions_rows(seed in 0u64..500, frac in 0.1f64..0.9) {
        let data = german(200, seed);
        let mut rng = Rng::new(seed);
        let (train, test) = data.train_test_split(frac, &mut rng);
        prop_assert_eq!(train.n_rows() + test.n_rows(), 200);
        prop_assert_eq!(test.n_rows(), (200.0 * frac) as usize);
        // Multisets of labels are preserved.
        let mut all: Vec<u8> = train.labels().to_vec();
        all.extend_from_slice(test.labels());
        all.sort_unstable();
        let mut orig = data.labels().to_vec();
        orig.sort_unstable();
        prop_assert_eq!(all, orig);
    }

    #[test]
    fn replicate_preserves_rates(seed in 0u64..200, factor in 1usize..5) {
        let data = german(120, seed);
        let rep = data.replicate(factor);
        prop_assert_eq!(rep.n_rows(), 120 * factor);
        prop_assert!((rep.positive_rate() - data.positive_rate()).abs() < 1e-12);
        let orig_priv = data.privileged_mask().iter().filter(|&&p| p).count();
        let rep_priv = rep.privileged_mask().iter().filter(|&&p| p).count();
        prop_assert_eq!(rep_priv, orig_priv * factor);
    }

    #[test]
    fn concat_is_associative_on_row_counts(seed in 0u64..200) {
        let a = german(40, seed);
        let b = german(30, seed + 1);
        let c = german(20, seed + 2);
        let left = a.concat(&b).concat(&c);
        let right = a.concat(&b.concat(&c));
        prop_assert_eq!(left, right);
    }
}

#[test]
fn bias_is_antisymmetric_under_group_swap() {
    // Swapping every row's group membership must negate statistical parity.
    let data = german(400, 42);
    let enc = Encoder::fit(&data);
    let mut e = enc.transform(&data);
    let mut model = LogisticRegression::new(e.n_cols(), 1e-3);
    gopher_models::train::fit_default(&mut model, &e);
    let before = bias(FairnessMetric::StatisticalParity, &model, &e);
    e.privileged.iter_mut().for_each(|p| *p = !*p);
    let after = bias(FairnessMetric::StatisticalParity, &model, &e);
    assert!((before + after).abs() < 1e-12, "{before} vs {after}");
}

#[test]
fn gradient_is_finite_when_one_group_has_no_positives() {
    // Degenerate predictive-parity case: a model that predicts almost no
    // positives for one group must still produce a finite gradient.
    let data = german(300, 43);
    let enc = Encoder::fit(&data);
    let e = enc.transform(&data);
    let model = LogisticRegression::new(e.n_cols(), 1e-3); // untrained: p = 0.5
    for metric in FairnessMetric::ALL {
        let g = bias_gradient(metric, &model, &e);
        assert!(
            g.iter().all(|v| v.is_finite()),
            "{metric}: non-finite gradient"
        );
        assert!(smooth_bias(metric, &model, &e).is_finite());
    }
}

#[test]
fn explainer_rejects_mismatched_model_width() {
    let data = german(100, 44);
    let mut rng = Rng::new(44);
    let (train, test) = data.train_test_split(0.3, &mut rng);
    let wrong = LogisticRegression::new(3, 1e-3); // far too narrow
    let result = std::panic::catch_unwind(|| SessionBuilder::new().build(wrong, &train, &test));
    assert!(result.is_err(), "mismatched widths must be rejected");
}

#[test]
fn encoded_width_is_stable_across_splits() {
    // The encoder is always fit on train; test rows must encode to the same
    // width even if some level never occurs in the test split.
    let data = german(150, 45);
    let mut rng = Rng::new(45);
    let (train, test) = data.train_test_split(0.2, &mut rng);
    let enc = Encoder::fit(&train);
    assert_eq!(
        enc.transform(&train).n_cols(),
        enc.transform(&test).n_cols()
    );
}

#[test]
fn models_expose_consistent_dimensions() {
    let data = german(100, 46);
    let enc = Encoder::fit(&data);
    let e = enc.transform(&data);
    let d = e.n_cols();
    let lr = LogisticRegression::new(d, 0.0);
    assert_eq!(lr.n_inputs(), d);
    assert_eq!(lr.n_params(), d + 1);
    assert_eq!(lr.params().len(), lr.n_params());
    let mut rng = Rng::new(46);
    let mlp = gopher_models::Mlp::new(d, 5, 0.0, &mut rng);
    assert_eq!(mlp.n_inputs(), d);
    assert_eq!(mlp.n_params(), 5 * d + 5 + 5 + 1);
}
