//! Session-reuse contract: one warm [`ExplainSession`] must answer exactly
//! like cold [`Gopher`] runs — the caches are invisible in the results.

#![allow(deprecated)] // the legacy façade is the comparison baseline here

use gopher_core::ExplanationReport;
use gopher_repro::prelude::*;

fn splits(seed: u64) -> (Dataset, Dataset) {
    let mut rng = Rng::new(seed);
    german(700, seed).train_test_split(0.3, &mut rng)
}

fn assert_identical(a: &ExplanationReport, b: &ExplanationReport) {
    assert_eq!(a.metric, b.metric);
    assert_eq!(a.base_bias, b.base_bias, "base bias must be bit-identical");
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.stats.total_scored, b.stats.total_scored);
    assert_eq!(a.stats.total_kept(), b.stats.total_kept());
    assert_eq!(a.explanations.len(), b.explanations.len());
    for (x, y) in a.explanations.iter().zip(&b.explanations) {
        assert_eq!(x.pattern_text, y.pattern_text);
        assert_eq!(x.support, y.support, "{}", x.pattern_text);
        assert_eq!(
            x.est_responsibility, y.est_responsibility,
            "{}",
            x.pattern_text
        );
        assert_eq!(x.candidate.interestingness, y.candidate.interestingness);
        assert_eq!(
            x.ground_truth_responsibility, y.ground_truth_responsibility,
            "{}",
            x.pattern_text
        );
        assert_eq!(x.ground_truth_new_bias, y.ground_truth_new_bias);
    }
}

/// One session answering StatisticalParity then EqualizedOdds-style queries
/// must produce identical reports to two cold `Gopher` runs.
#[test]
fn warm_session_matches_two_cold_gopher_runs() {
    let (train, test) = splits(301);
    let session = SessionBuilder::new().fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
    );

    for metric in [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
    ] {
        let warm = session
            .explain(
                &ExplainRequest::default()
                    .with_metric(metric)
                    .with_ground_truth(true),
            )
            .report;
        let cold = Gopher::fit(
            |n_cols| LogisticRegression::new(n_cols, 1e-3),
            &train,
            &test,
            GopherConfig {
                metric,
                ground_truth_for_topk: true,
                ..Default::default()
            },
        )
        .explain();
        assert_identical(&warm, &cold);
    }
}

/// A batch query must equal its sequential single-query equivalents.
#[test]
fn batch_equals_sequential_queries() {
    let (train, test) = splits(302);
    let session = SessionBuilder::new().fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
    );
    let requests = [
        ExplainRequest::default().with_ground_truth(false),
        ExplainRequest::default()
            .with_metric(FairnessMetric::EqualOpportunity)
            .with_ground_truth(false),
        ExplainRequest::default()
            .with_estimator(Estimator::FirstOrder)
            .with_k(2)
            .with_ground_truth(false),
    ];
    let batched = session.explain_batch(&requests);
    assert_eq!(batched.len(), requests.len());

    // A *fresh* session answering one request at a time (no shared caches
    // with the batch) must agree exactly.
    let sequential_session = SessionBuilder::new().fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
    );
    for (request, batch_response) in requests.iter().zip(&batched) {
        let solo = sequential_session.explain(request);
        assert_identical(&solo.report, &batch_response.report);
    }
}

/// Different estimators against one session stay bit-compatible with cold
/// runs too (the sweep cache keys must not collapse distinct estimators).
#[test]
fn estimator_variants_do_not_collide_in_the_cache() {
    let (train, test) = splits(303);
    let session = SessionBuilder::new().fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
    );
    let fo = session
        .explain(
            &ExplainRequest::default()
                .with_estimator(Estimator::FirstOrder)
                .with_ground_truth(false),
        )
        .report;
    let so = session
        .explain(
            &ExplainRequest::default()
                .with_estimator(Estimator::SecondOrder)
                .with_ground_truth(false),
        )
        .report;
    // Same metric and data, different estimators: responsibilities must
    // differ somewhere (they are different approximations).
    let fo_scores: Vec<f64> = fo
        .explanations
        .iter()
        .map(|e| e.est_responsibility)
        .collect();
    let so_scores: Vec<f64> = so
        .explanations
        .iter()
        .map(|e| e.est_responsibility)
        .collect();
    assert_ne!(
        fo_scores, so_scores,
        "estimators must not share cache slots"
    );

    let cold = Gopher::fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
        GopherConfig {
            estimator: Estimator::FirstOrder,
            ground_truth_for_topk: false,
            ..Default::default()
        },
    )
    .explain();
    assert_identical(&fo, &cold);
}
