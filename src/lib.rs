//! Umbrella crate for the Gopher reproduction workspace.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests (and downstream users who want a single dependency)
//! can write `use gopher_repro::prelude::*`.
//!
//! The actual functionality lives in the member crates:
//!
//! * [`gopher_core`] — the explainer (start at
//!   [`gopher_core::SessionBuilder`]);
//! * [`gopher_data`] — datasets, encoding, generators, poisoning;
//! * [`gopher_models`] — logistic regression / SVM / MLP / forest + trainers;
//! * [`gopher_fairness`] — fairness metrics and their gradients;
//! * [`gopher_influence`] — per-family influence backends (Hessian-based
//!   estimators, tree unlearning);
//! * [`gopher_patterns`] — predicates, lattice search, top-k selection;
//! * [`gopher_serve`] — the `gopher serve` HTTP daemon: session registry,
//!   micro-batching, wire codecs (start at [`gopher_serve::Server`]);
//! * [`gopher_json`] — the dependency-free JSON codec the CLI and daemon
//!   share;
//! * [`gopher_linalg`] / [`gopher_prng`] — numeric substrate.

#![forbid(unsafe_code)]

pub use gopher_core;
pub use gopher_data;
pub use gopher_fairness;
pub use gopher_influence;
pub use gopher_json;
pub use gopher_linalg;
pub use gopher_models;
pub use gopher_patterns;
pub use gopher_prng;
pub use gopher_serve;

/// The names almost every consumer needs.
pub mod prelude {
    #[allow(deprecated)]
    pub use gopher_core::Gopher;
    pub use gopher_core::{
        ExplainRequest, ExplainResponse, ExplainSession, GopherConfig, SessionBuilder, UpdateConfig,
    };
    pub use gopher_data::generators::{adult, german, sqf};
    pub use gopher_data::{Dataset, Encoded, Encoder};
    pub use gopher_fairness::FairnessMetric;
    pub use gopher_influence::{BiasEval, Estimator, InfluenceBackend, ModelFamily};
    pub use gopher_models::train::{fit_default, fit_gd, fit_newton};
    pub use gopher_models::{
        Differentiable, Forest, ForestConfig, LinearSvm, LogisticRegression, Mlp, Model,
    };
    pub use gopher_patterns::LatticeConfig;
    pub use gopher_prng::Rng;
}
