//! Debugging gender bias in an income model (synthetic Adult census data)
//! with the paper's neural network, and comparing Gopher's explanations
//! against the FO-tree baseline.
//!
//! ```sh
//! cargo run --release --example income_model_debugging
//! ```

use gopher_core::fo_tree::{FoTree, FoTreeConfig};
use gopher_core::report::{pct, TextTable};
use gopher_influence::{BiasEval, BiasInfluence, Estimator};
use gopher_repro::prelude::*;

fn main() {
    let mut rng = Rng::new(23);
    let (train, test) = adult(4_000, 23).train_test_split(0.3, &mut rng);

    // The paper's Adult experiments use the 1×10 feed-forward network. Its
    // loss is non-convex, so the influence engine damps the Hessian; the
    // paper observes (and we reproduce) that influence estimates are less
    // faithful here than for convex models — Gopher still finds patterns
    // that genuinely reduce bias.
    let mut init_rng = Rng::new(24);
    let session = SessionBuilder::new().fit(
        |n_cols| Mlp::new(n_cols, 10, 1e-3, &mut init_rng),
        &train,
        &test,
    );

    let report = session.explain(&ExplainRequest::default()).report;
    println!(
        "=== income model (MLP): statistical parity bias {:.3}, accuracy {:.3} ===\n",
        report.base_bias, report.accuracy
    );
    let mut table = TextTable::new(&["Method", "Pattern", "Support", "Δbias (retrained)"]);
    for e in &report.explanations {
        table.row_owned(vec![
            "Gopher".into(),
            e.pattern_text.clone(),
            pct(e.support),
            e.ground_truth_responsibility
                .map(pct)
                .unwrap_or_else(|| "-".into()),
        ]);
    }

    // FO-tree baseline: regress per-point first-order influences on the raw
    // features and read patterns off the most influential nodes. The
    // session's engine handle serves this advanced query too.
    let bi = BiasInfluence::new(
        session.engine(),
        FairnessMetric::StatisticalParity,
        session.test(),
    );
    let influence: Vec<f64> = (0..session.train().n_rows())
        .map(|r| {
            bi.responsibility(
                session.train(),
                &[r as u32],
                Estimator::FirstOrder,
                BiasEval::ChainRule,
            )
        })
        .collect();
    let tree = FoTree::fit(session.train_raw(), &influence, &FoTreeConfig::default());
    for node in tree.top_nodes(session.train_raw(), 3) {
        let (gt, _) =
            session.ground_truth_responsibility(FairnessMetric::StatisticalParity, &node.rows);
        table.row_owned(vec![
            "FO-tree".into(),
            node.pattern_text,
            pct(node.support),
            pct(gt),
        ]);
    }
    println!("{}", table.render());
}
