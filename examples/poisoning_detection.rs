//! Detecting a fairness-poisoning attack with influence-ranked clusters
//! (paper §6.7): an anchoring attack injects in-distribution poisons that
//! widen the demographic gap; Local Outlier Factor cannot see them, but
//! ranking k-means clusters by estimated second-order influence can.
//!
//! ```sh
//! cargo run --release --example poisoning_detection
//! ```

use gopher_core::poison_detect::{detect_poison, PoisonDetectionConfig};
use gopher_data::poison::AnchoringAttack;
use gopher_influence::{InfluenceConfig, InfluenceEngine};
use gopher_repro::prelude::*;

fn main() {
    // 1. Clean data and a stealthy attack.
    let clean = german(1_000, 99);
    let mut rng = Rng::new(100);
    let attack = AnchoringAttack {
        poison_fraction: 0.08,
        ..Default::default()
    };
    let poisoned = attack.run(&clean, &mut rng);
    println!(
        "injected {} poisons into {} clean rows",
        poisoned.n_poison,
        clean.n_rows()
    );

    // 2. The victim trains on the contaminated data.
    let encoder = Encoder::fit(&poisoned.data);
    let train = encoder.transform(&poisoned.data);
    let audit = encoder.transform(&clean);
    let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
    fit_default(&mut model, &train);
    println!(
        "statistical parity bias of the poisoned model: {:+.4}",
        gopher_fairness::bias(FairnessMetric::StatisticalParity, &model, &audit)
    );

    // 3. The defender clusters the training data and ranks clusters by
    //    estimated influence on the bias.
    let engine = InfluenceEngine::new(model, &train, InfluenceConfig::default());
    let outcome = detect_poison(
        &engine,
        &train,
        &audit,
        FairnessMetric::StatisticalParity,
        &poisoned.is_poison,
        &PoisonDetectionConfig::default(),
        &mut rng,
    );

    println!("\ncluster ranking (by per-member influence responsibility):");
    for c in outcome.ranked.iter().take(5) {
        println!(
            "  cluster {:>2}: size {:>4}, responsibility {:+.4}, poisons inside: {}",
            c.cluster, c.size, c.responsibility, c.n_poison
        );
    }
    println!(
        "\ntop-2 clusters: recall {:.0}%, precision {:.0}%",
        100.0 * outcome.cluster_recall,
        100.0 * outcome.cluster_precision
    );
    println!(
        "LOF baseline:   recall {:.0}%  (anchoring poisons are in-distribution)",
        100.0 * outcome.lof_recall
    );
}
