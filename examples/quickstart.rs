//! Quickstart: train a classifier on biased data and ask Gopher *why* it is
//! biased.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gopher_repro::prelude::*;

fn main() {
    // 1. A loan dataset with a known age bias (synthetic German Credit).
    let mut rng = Rng::new(7);
    let (train, test) = german(1_000, 7).train_test_split(0.3, &mut rng);

    // 2. Train a logistic regression and wrap it in the explainer.
    //    `Gopher::fit` encodes the data (one-hot + z-score), trains the
    //    model to a stationary point, and precomputes the influence state.
    let gopher = Gopher::fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
        GopherConfig::default(),
    );

    // 3. Explain the statistical-parity bias.
    let report = gopher.explain();
    println!(
        "statistical parity bias = {:.3} (test accuracy {:.3})\n",
        report.base_bias, report.accuracy
    );
    println!(
        "top-{} training-data explanations:",
        report.explanations.len()
    );
    for (i, e) in report.explanations.iter().enumerate() {
        println!(
            "  {}. {}  [support {:.1}%, removing it cuts bias by {:.1}%]",
            i + 1,
            e.pattern_text,
            100.0 * e.support,
            100.0 * e.ground_truth_responsibility.unwrap_or(f64::NAN),
        );
    }
}
