//! Quickstart: train a classifier on biased data and ask Gopher *why* it is
//! biased — then ask a follow-up question against the same session for
//! (almost) free.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gopher_repro::prelude::*;

fn main() {
    // 1. A loan dataset with a known age bias (synthetic German Credit).
    let mut rng = Rng::new(7);
    let (train, test) = german(1_000, 7).train_test_split(0.3, &mut rng);

    // 2. Train a logistic regression and wrap it in an explain session.
    //    `SessionBuilder::fit` encodes the data (one-hot + z-score), trains
    //    the model to a stationary point, and precomputes the influence
    //    state — the expensive part, paid once per model.
    let session = SessionBuilder::new().fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
    );

    // 3. Explain the statistical-parity bias.
    let response = session.explain(&ExplainRequest::default());
    let report = &response.report;
    println!(
        "statistical parity bias = {:.3} (test accuracy {:.3})\n",
        report.base_bias, report.accuracy
    );
    println!(
        "top-{} training-data explanations:",
        report.explanations.len()
    );
    for (i, e) in report.explanations.iter().enumerate() {
        println!(
            "  {}. {}  [support {:.1}%, removing it cuts bias by {:.1}%]",
            i + 1,
            e.pattern_text,
            100.0 * e.support,
            100.0 * e.ground_truth_responsibility.unwrap_or(f64::NAN),
        );
    }

    // 4. A second question — different metric, same session — reuses the
    //    trained model, Hessian, predicates, and every cached coverage.
    let eo = session.explain(
        &ExplainRequest::default()
            .with_metric(FairnessMetric::EqualOpportunity)
            .with_ground_truth(false),
    );
    println!(
        "\nequal opportunity bias = {:.3}, answered in {:.0} ms (warm session)",
        eo.report.base_bias,
        eo.query_time.as_secs_f64() * 1e3,
    );
}
