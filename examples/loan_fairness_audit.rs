//! A full fairness audit of a credit-scoring model: metrics, per-group
//! confusion statistics, removal-based explanations, and actionable
//! update-based repairs (the paper's Table 1 + Table 4 workflow).
//!
//! ```sh
//! cargo run --release --example loan_fairness_audit
//! ```

use gopher_core::report::{pct, TextTable};
use gopher_fairness::{
    bias, disparate_impact_ratio, equalized_odds_gap, group_confusion, FairnessMetric,
};
use gopher_repro::prelude::*;

fn main() {
    let mut rng = Rng::new(11);
    let (train, test) = german(1_000, 11).train_test_split(0.3, &mut rng);
    let session = SessionBuilder::new().fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
    );
    let model = session.model();
    let test_enc = session.test();

    // --- 1. The audit surface -------------------------------------------
    println!("=== fairness audit: credit-risk model (privileged = age >= 45) ===\n");
    let mut metrics = TextTable::new(&["Metric", "Value"]);
    for metric in FairnessMetric::ALL {
        metrics.row_owned(vec![
            metric.name().into(),
            format!("{:+.4}", bias(metric, model, test_enc)),
        ]);
    }
    metrics.row_owned(vec![
        "disparate impact ratio".into(),
        format!("{:.3}", disparate_impact_ratio(model, test_enc)),
    ]);
    metrics.row_owned(vec![
        "equalized odds gap".into(),
        format!("{:.4}", equalized_odds_gap(model, test_enc)),
    ]);
    println!("{}", metrics.render());

    let stats = group_confusion(model, test_enc);
    let mut groups = TextTable::new(&["Group", "n", "P(Ŷ=1)", "TPR", "FPR", "PPV", "Accuracy"]);
    for (name, c) in [
        ("privileged (old)", stats.privileged),
        ("protected (young)", stats.protected),
    ] {
        groups.row_owned(vec![
            name.into(),
            c.total().to_string(),
            format!("{:.3}", c.positive_rate()),
            format!("{:.3}", c.tpr()),
            format!("{:.3}", c.fpr()),
            format!("{:.3}", c.ppv()),
            format!("{:.3}", c.accuracy()),
        ]);
    }
    println!("{}", groups.render());

    // --- 2. Root causes + repairs ----------------------------------------
    let (report, updates) =
        session.explain_with_updates(&ExplainRequest::default(), &UpdateConfig::default());
    println!("=== root causes of the statistical-parity gap ===\n");
    let schema = session.train_raw().schema();
    for (e, u) in report.explanations.iter().zip(&updates) {
        println!("pattern: {}", e.pattern_text);
        println!("  support             : {}", pct(e.support));
        println!(
            "  bias cut if removed : {}",
            e.ground_truth_responsibility
                .map(pct)
                .unwrap_or_else(|| "-".into())
        );
        if u.changes.is_empty() {
            println!("  suggested repair    : (no homogeneous update found)");
        } else {
            let repair = u
                .changes
                .iter()
                .map(|c| c.render(schema))
                .collect::<Vec<_>>()
                .join("; ");
            println!("  suggested repair    : {repair}");
            println!(
                "  bias cut if updated : {}",
                u.ground_truth_responsibility
                    .map(pct)
                    .unwrap_or_else(|| "-".into())
            );
        }
        println!();
    }
}
