//! Auditing a stop-and-frisk model (synthetic SQF data) for racial bias,
//! across all three fairness metrics and two model families.
//!
//! Here the favorable outcome (`Ŷ = 1`) is *not being frisked* and the
//! privileged group is `race = White`, so a positive bias value reads
//! "whites are spared frisks more often".
//!
//! All three metrics are answered by **one session** as a single batched
//! query: the model trains once, the influence engine factors once, and the
//! lattice sweep's coverage enumeration is shared — only the per-metric
//! scoring differs.
//!
//! ```sh
//! cargo run --release --example policing_audit
//! ```

use gopher_repro::prelude::*;

fn main() {
    let mut rng = Rng::new(31);
    let (train, test) = sqf(6_000, 31).train_test_split(0.3, &mut rng);

    // Audit with logistic regression (the paper's Table 3 model): one
    // session, one batch, three metrics.
    let session = SessionBuilder::new().fit(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
    );
    let requests: Vec<ExplainRequest> = FairnessMetric::ALL
        .into_iter()
        .map(|metric| ExplainRequest::default().with_metric(metric).with_k(2))
        .collect();
    for response in session.explain_batch(&requests) {
        let report = &response.report;
        println!(
            "=== {} (bias {:+.3}, answered in {:.0} ms) ===",
            report.metric,
            report.base_bias,
            response.query_time.as_secs_f64() * 1e3,
        );
        for e in &report.explanations {
            println!(
                "  {}  [support {:.1}%, Δbias {:.1}%]",
                e.pattern_text,
                100.0 * e.support,
                100.0 * e.ground_truth_responsibility.unwrap_or(f64::NAN),
            );
        }
        println!();
    }

    // Cross-check the headline metric with an SVM: the explanations should
    // point at the same discriminatory practice even under a different
    // model family. (A different model means a different session — the
    // per-model state is exactly what a session owns.)
    let svm_session =
        SessionBuilder::new().fit(|n_cols| LinearSvm::new(n_cols, 1e-3), &train, &test);
    let report = svm_session
        .explain(&ExplainRequest::default().with_k(2))
        .report;
    println!(
        "=== cross-check with SVM (statistical parity {:+.3}) ===",
        report.base_bias
    );
    for e in &report.explanations {
        println!(
            "  {}  [support {:.1}%, Δbias {:.1}%]",
            e.pattern_text,
            100.0 * e.support,
            100.0 * e.ground_truth_responsibility.unwrap_or(f64::NAN),
        );
    }
}
