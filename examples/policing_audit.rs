//! Auditing a stop-and-frisk model (synthetic SQF data) for racial bias,
//! across all three fairness metrics and two model families.
//!
//! Here the favorable outcome (`Ŷ = 1`) is *not being frisked* and the
//! privileged group is `race = White`, so a positive bias value reads
//! "whites are spared frisks more often".
//!
//! ```sh
//! cargo run --release --example policing_audit
//! ```

use gopher_repro::prelude::*;

fn main() {
    let mut rng = Rng::new(31);
    let (train, test) = sqf(6_000, 31).train_test_split(0.3, &mut rng);

    for metric in FairnessMetric::ALL {
        // Audit with logistic regression (the paper's Table 3 model).
        let gopher = Gopher::fit(
            |n_cols| LogisticRegression::new(n_cols, 1e-3),
            &train,
            &test,
            GopherConfig {
                metric,
                k: 2,
                ..Default::default()
            },
        );
        let report = gopher.explain();
        println!("=== {} (bias {:+.3}) ===", metric, report.base_bias);
        for e in &report.explanations {
            println!(
                "  {}  [support {:.1}%, Δbias {:.1}%]",
                e.pattern_text,
                100.0 * e.support,
                100.0 * e.ground_truth_responsibility.unwrap_or(f64::NAN),
            );
        }
        println!();
    }

    // Cross-check the headline metric with an SVM: the explanations should
    // point at the same discriminatory practice even under a different
    // model family.
    let svm_gopher = Gopher::fit(
        |n_cols| LinearSvm::new(n_cols, 1e-3),
        &train,
        &test,
        GopherConfig {
            k: 2,
            ..Default::default()
        },
    );
    let report = svm_gopher.explain();
    println!(
        "=== cross-check with SVM (statistical parity {:+.3}) ===",
        report.base_bias
    );
    for e in &report.explanations {
        println!(
            "  {}  [support {:.1}%, Δbias {:.1}%]",
            e.pattern_text,
            100.0 * e.support,
            100.0 * e.ground_truth_responsibility.unwrap_or(f64::NAN),
        );
    }
}
