//! Interpretable pre-processing repair: iteratively remove Gopher's top
//! explanation and retrain until the statistical-parity gap is acceptable.
//!
//! Every removal is a human-readable pattern, so (unlike blind reweighing)
//! the data owner can veto a repair that would delete the wrong people.
//!
//! ```sh
//! cargo run --release --example bias_mitigation
//! ```

use gopher_core::mitigate::{mitigate, MitigationConfig};
use gopher_repro::prelude::*;

fn main() {
    let mut rng = Rng::new(55);
    let (train, test) = german(1_000, 55).train_test_split(0.3, &mut rng);

    let report = mitigate(
        |n_cols| LogisticRegression::new(n_cols, 1e-3),
        &train,
        &test,
        &GopherConfig::default(),
        &MitigationConfig {
            target_bias: 0.05,
            max_rounds: 5,
            max_removed_fraction: 0.3,
        },
    );

    println!("=== greedy pattern-removal mitigation ===\n");
    for (i, round) in report.rounds.iter().enumerate() {
        println!(
            "round {}: removed {:>3} rows matching {}\n          bias {:.3} → {:.3} (accuracy {:.3})",
            i + 1,
            round.removed_rows,
            round.pattern_text,
            round.bias_before,
            round.bias_after,
            round.accuracy_after,
        );
    }
    println!(
        "\nfinal bias {:.3} (target 0.05, achieved: {}), accuracy {:.3}, removed {:.1}% of training data",
        report.final_bias,
        report.achieved,
        report.final_accuracy,
        100.0 * report.removed_fraction,
    );
}
